package proc

import (
	"os"
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"zerosum/internal/topology"
)

func TestTaskStatRoundTrip(t *testing.T) {
	in := TaskStat{
		PID: 51334, Comm: "miniqmc", State: StateRunning, PPID: 51000,
		MinFlt: 12345, MajFlt: 7, UTime: 6394, STime: 1248,
		Priority: 20, Nice: 0, NumThrs: 9, StartTime: 100200,
		VSize: 4 << 30, RSS: 250000, Processor: 1, NSwap: 0,
	}
	text := RenderTaskStat(in)
	out, err := ParseTaskStat([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestTaskStatCommWithSpacesAndParens(t *testing.T) {
	in := TaskStat{PID: 7, Comm: "tmux: server (1)", State: StateSleeping, NumThrs: 1}
	out, err := ParseTaskStat([]byte(RenderTaskStat(in)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Comm != in.Comm {
		t.Fatalf("comm = %q, want %q", out.Comm, in.Comm)
	}
}

func TestParseTaskStatErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"123 no-parens R 1",
		"x (comm) R 1",
		"1 (c) R", // too few fields
	} {
		if _, err := ParseTaskStat([]byte(bad)); err == nil {
			t.Errorf("ParseTaskStat(%q) should fail", bad)
		}
	}
}

func TestTaskStatusRoundTrip(t *testing.T) {
	in := TaskStatus{
		Name: "zerosum", State: StateSleeping, Tgid: 51334, Pid: 51343,
		PPid: 51000, Threads: 9,
		VmPeakKB: 900000, VmSizeKB: 850000, VmHWMKB: 400000, VmRSSKB: 390000,
		CpusAllowed:   topology.RangeCPUSet(1, 7),
		VoluntaryCtxt: 679, NonvoluntaryCtx: 9,
	}
	text := RenderTaskStatus(in)
	out, err := ParseTaskStatus([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.State != in.State || out.Pid != in.Pid ||
		out.Threads != in.Threads || out.VmRSSKB != in.VmRSSKB ||
		out.VoluntaryCtxt != in.VoluntaryCtxt || out.NonvoluntaryCtx != in.NonvoluntaryCtx {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if !out.CpusAllowed.Equal(in.CpusAllowed) {
		t.Fatalf("affinity mismatch: %s vs %s", out.CpusAllowed, in.CpusAllowed)
	}
}

func TestParseTaskStatusHexFallback(t *testing.T) {
	// A status file with only the hex mask (no _list line).
	text := "Name:\tx\nPid:\t5\nCpus_allowed:\tff\n"
	out, err := ParseTaskStatus([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if !out.CpusAllowed.Equal(topology.RangeCPUSet(0, 7)) {
		t.Fatalf("hex fallback affinity = %s", out.CpusAllowed)
	}
}

func TestParseTaskStatusEmpty(t *testing.T) {
	if _, err := ParseTaskStatus([]byte("garbage\nwithout fields\n")); err == nil {
		t.Fatal("unrecognisable status should fail")
	}
}

func TestMeminfoRoundTrip(t *testing.T) {
	in := Meminfo{
		MemTotalKB: 512 << 20 >> 10, MemFreeKB: 100 << 20 >> 10,
		MemAvailableKB: 200 << 20 >> 10, BuffersKB: 1024, CachedKB: 2048,
		SwapTotalKB: 0, SwapFreeKB: 0, ActiveKB: 5000, InactiveKB: 600,
	}
	out, err := ParseMeminfo([]byte(RenderMeminfo(in)))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestParseMeminfoRejectsGarbage(t *testing.T) {
	if _, err := ParseMeminfo([]byte("hello world")); err == nil {
		t.Fatal("should fail without MemTotal")
	}
}

func TestStatRoundTrip(t *testing.T) {
	in := Stat{
		Aggregate: CPUTimes{CPU: -1, User: 100, Nice: 1, System: 50, Idle: 900, IOWait: 3},
		PerCPU: []CPUTimes{
			{CPU: 0, User: 60, System: 30, Idle: 400},
			{CPU: 1, User: 40, Nice: 1, System: 20, Idle: 500, IOWait: 3, IRQ: 1, SoftIRQ: 2, Steal: 4},
		},
		Ctxt: 123456, BTime: 1700000000, Processes: 999, Running: 3, Blocked: 1,
	}
	out, err := ParseStat([]byte(RenderStat(in)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Aggregate != in.Aggregate {
		t.Fatalf("aggregate mismatch: %+v vs %+v", out.Aggregate, in.Aggregate)
	}
	if len(out.PerCPU) != 2 || out.PerCPU[1] != in.PerCPU[1] {
		t.Fatalf("per-cpu mismatch: %+v", out.PerCPU)
	}
	if out.Ctxt != in.Ctxt || out.Running != in.Running || out.Blocked != in.Blocked {
		t.Fatalf("counters mismatch: %+v", out)
	}
}

func TestCPUTimesTotal(t *testing.T) {
	c := CPUTimes{User: 1, Nice: 2, System: 3, Idle: 4, IOWait: 5, IRQ: 6, SoftIRQ: 7, Steal: 8}
	if c.Total() != 36 {
		t.Fatalf("Total = %d, want 36", c.Total())
	}
}

func TestTaskStateNames(t *testing.T) {
	cases := map[TaskState]string{
		StateRunning: "running", StateSleeping: "sleeping", StateDisk: "disk sleep",
		StateStopped: "stopped", StateZombie: "zombie", StateIdle: "idle",
		TaskState('?'): "unknown",
	}
	for s, want := range cases {
		if got := s.Name(); got != want {
			t.Errorf("%c.Name() = %q, want %q", byte(s), got, want)
		}
	}
}

func TestQuickTaskStatRoundTrip(t *testing.T) {
	f := func(pid uint16, minflt, majflt, utime, stime uint32, nthr uint8, cpu uint8) bool {
		in := TaskStat{
			PID: int(pid) + 1, Comm: "w", State: StateRunning,
			MinFlt: uint64(minflt), MajFlt: uint64(majflt),
			UTime: uint64(utime), STime: uint64(stime),
			NumThrs: int(nthr), Processor: int(cpu),
		}
		out, err := ParseTaskStat([]byte(RenderTaskStat(in)))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRealFSLiveHost exercises the live-Linux code path the paper's tool
// uses in production: read our own /proc entries.
func TestRealFSLiveHost(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("requires Linux /proc")
	}
	if _, err := os.Stat("/proc/self/stat"); err != nil {
		t.Skip("/proc not available")
	}
	fs := NewRealFS()
	pid := fs.SelfPID()
	tids, err := fs.Tasks(pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) == 0 {
		t.Fatal("expected at least one task (ourselves)")
	}
	raw, err := fs.TaskStat(pid, tids[0])
	if err != nil {
		t.Fatal(err)
	}
	st, err := ParseTaskStat(raw)
	if err != nil {
		t.Fatalf("parse live stat: %v\n%s", err, raw)
	}
	if st.PID != tids[0] {
		t.Fatalf("stat pid = %d, want %d", st.PID, tids[0])
	}
	rawStatus, err := fs.ProcessStatus(pid)
	if err != nil {
		t.Fatal(err)
	}
	status, err := ParseTaskStatus(rawStatus)
	if err != nil {
		t.Fatalf("parse live status: %v", err)
	}
	if status.Pid != pid {
		t.Fatalf("status pid = %d, want %d", status.Pid, pid)
	}
	if status.CpusAllowed.Empty() {
		t.Fatal("live Cpus_allowed should be non-empty")
	}
	mi, err := fs.Meminfo()
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseMeminfo(mi)
	if err != nil || m.MemTotalKB == 0 {
		t.Fatalf("live meminfo parse: %v %+v", err, m)
	}
	stRaw, err := fs.Stat()
	if err != nil {
		t.Fatal(err)
	}
	stat, err := ParseStat(stRaw)
	if err != nil || len(stat.PerCPU) == 0 {
		t.Fatalf("live /proc/stat parse: %v", err)
	}
	if fs.Hostname() == "" {
		t.Fatal("hostname empty")
	}
}

func TestRealFSMissingPid(t *testing.T) {
	fs := &RealFS{Root: t.TempDir()}
	if _, err := fs.Tasks(1); err == nil {
		t.Fatal("missing pid should error")
	}
}

func TestRenderStatAggregateParsable(t *testing.T) {
	// The aggregate "cpu" row uses a double space like real kernels; make
	// sure our own parser is robust to it.
	text := RenderStat(Stat{Aggregate: CPUTimes{User: 5, Idle: 10}})
	if !strings.HasPrefix(text, "cpu  5") {
		t.Fatalf("aggregate row format: %q", strings.SplitN(text, "\n", 2)[0])
	}
	st, err := ParseStat([]byte(text))
	if err != nil || st.Aggregate.User != 5 {
		t.Fatalf("parse: %v %+v", err, st)
	}
}

// TestParseIntoZeroAlloc pins the hot-path contract of the Into parsers:
// after the first call has sized the struct's internal storage, re-parsing
// equivalent text must not allocate at all.
func TestParseIntoZeroAlloc(t *testing.T) {
	statText := []byte(RenderTaskStat(TaskStat{PID: 1234, Comm: "miniqmc", State: StateRunning,
		MinFlt: 12, UTime: 6394, STime: 1248, NumThrs: 9, Processor: 5}))
	statusText := []byte(RenderTaskStatus(TaskStatus{Name: "x", State: StateRunning, Pid: 1,
		CpusAllowed: topology.RangeCPUSet(1, 7), VoluntaryCtxt: 10, NonvoluntaryCtx: 20}))
	memText := []byte(RenderMeminfo(Meminfo{MemTotalKB: 16 << 20, MemFreeKB: 8 << 20}))
	ioText := []byte(RenderTaskIO(TaskIO{RChar: 100, WChar: 200, SyscR: 10}))
	procStatText := []byte(RenderStat(Stat{
		Aggregate: CPUTimes{CPU: -1, User: 100, Idle: 900},
		PerCPU:    []CPUTimes{{CPU: 0, User: 60}, {CPU: 1, User: 40}},
	}))

	var ts TaskStat
	var st TaskStatus
	var mi Meminfo
	var tio TaskIO
	var ps Stat
	cases := []struct {
		name string
		fn   func() error
	}{
		{"ParseTaskStatInto", func() error { return ParseTaskStatInto(statText, &ts) }},
		{"ParseTaskStatusInto", func() error { return ParseTaskStatusInto(statusText, &st) }},
		{"ParseMeminfoInto", func() error { return ParseMeminfoInto(memText, &mi) }},
		{"ParseTaskIOInto", func() error { return ParseTaskIOInto(ioText, &tio) }},
		{"ParseStatInto", func() error { return ParseStatInto(procStatText, &ps) }},
	}
	for _, c := range cases {
		if err := c.fn(); err != nil { // warmup sizes internal storage
			t.Fatalf("%s: %v", c.name, err)
		}
		if avg := testing.AllocsPerRun(100, func() {
			if err := c.fn(); err != nil {
				t.Error(err)
			}
		}); avg != 0 {
			t.Errorf("%s allocates %.1f per steady-state call, want 0", c.name, avg)
		}
	}
}

func BenchmarkParseTaskStat(b *testing.B) {
	text := []byte(RenderTaskStat(TaskStat{PID: 1234, Comm: "miniqmc", State: StateRunning,
		MinFlt: 12, UTime: 6394, STime: 1248, NumThrs: 9, Processor: 5}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTaskStat(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTaskStatus(b *testing.B) {
	text := []byte(RenderTaskStatus(TaskStatus{Name: "x", State: StateRunning, Pid: 1,
		CpusAllowed: topology.RangeCPUSet(1, 7), VoluntaryCtxt: 10, NonvoluntaryCtx: 20}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTaskStatus(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTaskStatInto(b *testing.B) {
	text := []byte(RenderTaskStat(TaskStat{PID: 1234, Comm: "miniqmc", State: StateRunning,
		MinFlt: 12, UTime: 6394, STime: 1248, NumThrs: 9, Processor: 5}))
	var s TaskStat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ParseTaskStatInto(text, &s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTaskStatusInto(b *testing.B) {
	text := []byte(RenderTaskStatus(TaskStatus{Name: "x", State: StateRunning, Pid: 1,
		CpusAllowed: topology.RangeCPUSet(1, 7), VoluntaryCtxt: 10, NonvoluntaryCtx: 20}))
	var s TaskStatus
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ParseTaskStatusInto(text, &s); err != nil {
			b.Fatal(err)
		}
	}
}
