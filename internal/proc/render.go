package proc

import (
	"fmt"
	"strings"
)

// RenderTaskStat renders s in the exact single-line format of
// /proc/<pid>/task/<tid>/stat (52 fields, kernel 5.x layout). Unmodelled
// fields are zero, as they would be for a freshly forked task.
func RenderTaskStat(s TaskStat) string {
	var b strings.Builder
	// 1 pid, 2 comm, 3 state, 4 ppid, 5 pgrp, 6 session, 7 tty_nr, 8 tpgid,
	// 9 flags
	fmt.Fprintf(&b, "%d (%s) %c %d %d %d 0 -1 4194304", s.PID, s.Comm, byte(s.State), s.PPID, s.PPID, s.PPID)
	// 10 minflt 11 cminflt 12 majflt 13 cmajflt
	fmt.Fprintf(&b, " %d 0 %d 0", s.MinFlt, s.MajFlt)
	// 14 utime 15 stime 16 cutime 17 cstime
	fmt.Fprintf(&b, " %d %d 0 0", s.UTime, s.STime)
	// 18 priority 19 nice 20 num_threads 21 itrealvalue 22 starttime
	fmt.Fprintf(&b, " %d %d %d 0 %d", s.Priority, s.Nice, s.NumThrs, s.StartTime)
	// 23 vsize 24 rss 25 rsslim
	fmt.Fprintf(&b, " %d %d 18446744073709551615", s.VSize, s.RSS)
	// 26..35 startcode endcode startstack kstkesp kstkeip signal blocked
	// sigignore sigcatch wchan
	b.WriteString(" 0 0 0 0 0 0 0 0 0 0")
	// 36 nswap 37 cnswap 38 exit_signal 39 processor
	fmt.Fprintf(&b, " %d 0 17 %d", s.NSwap, s.Processor)
	// 40 rt_priority 41 policy 42 delayacct_blkio_ticks 43 guest_time
	// 44 cguest_time 45..52 addresses/exit_code
	b.WriteString(" 0 0 0 0 0 0 0 0 0 0 0 0 0")
	b.WriteByte('\n')
	return b.String()
}

// RenderTaskStatus renders s in the format of /proc/<pid>/status, covering
// the lines ZeroSum parses plus the usual neighbours so that layout
// assumptions (ordering, tabs) match a real kernel.
func RenderTaskStatus(s TaskStatus) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Name:\t%s\n", s.Name)
	fmt.Fprintf(&b, "State:\t%c (%s)\n", byte(s.State), s.State.Name())
	fmt.Fprintf(&b, "Tgid:\t%d\n", s.Tgid)
	fmt.Fprintf(&b, "Ngid:\t0\n")
	fmt.Fprintf(&b, "Pid:\t%d\n", s.Pid)
	fmt.Fprintf(&b, "PPid:\t%d\n", s.PPid)
	fmt.Fprintf(&b, "TracerPid:\t0\n")
	fmt.Fprintf(&b, "Uid:\t1000\t1000\t1000\t1000\n")
	fmt.Fprintf(&b, "Gid:\t1000\t1000\t1000\t1000\n")
	fmt.Fprintf(&b, "FDSize:\t256\n")
	fmt.Fprintf(&b, "VmPeak:\t%8d kB\n", s.VmPeakKB)
	fmt.Fprintf(&b, "VmSize:\t%8d kB\n", s.VmSizeKB)
	fmt.Fprintf(&b, "VmHWM:\t%8d kB\n", s.VmHWMKB)
	fmt.Fprintf(&b, "VmRSS:\t%8d kB\n", s.VmRSSKB)
	fmt.Fprintf(&b, "Threads:\t%d\n", s.Threads)
	fmt.Fprintf(&b, "Cpus_allowed:\t%s\n", s.CpusAllowed.HexMask())
	fmt.Fprintf(&b, "Cpus_allowed_list:\t%s\n", s.CpusAllowed.String())
	fmt.Fprintf(&b, "voluntary_ctxt_switches:\t%d\n", s.VoluntaryCtxt)
	fmt.Fprintf(&b, "nonvoluntary_ctxt_switches:\t%d\n", s.NonvoluntaryCtx)
	return b.String()
}

// RenderMeminfo renders m in the format of /proc/meminfo.
func RenderMeminfo(m Meminfo) string {
	var b strings.Builder
	line := func(name string, kb uint64) {
		fmt.Fprintf(&b, "%s%s kB\n", name, fmt.Sprintf("%*d", 15-len(name)+8, kb))
	}
	line("MemTotal:", m.MemTotalKB)
	line("MemFree:", m.MemFreeKB)
	line("MemAvailable:", m.MemAvailableKB)
	line("Buffers:", m.BuffersKB)
	line("Cached:", m.CachedKB)
	line("SwapCached:", 0)
	line("Active:", m.ActiveKB)
	line("Inactive:", m.InactiveKB)
	line("SwapTotal:", m.SwapTotalKB)
	line("SwapFree:", m.SwapFreeKB)
	return b.String()
}

// RenderTaskIO renders io in the format of /proc/<pid>/io.
func RenderTaskIO(io TaskIO) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rchar: %d\n", io.RChar)
	fmt.Fprintf(&b, "wchar: %d\n", io.WChar)
	fmt.Fprintf(&b, "syscr: %d\n", io.SyscR)
	fmt.Fprintf(&b, "syscw: %d\n", io.SyscW)
	fmt.Fprintf(&b, "read_bytes: %d\n", io.ReadBytes)
	fmt.Fprintf(&b, "write_bytes: %d\n", io.WriteBytes)
	fmt.Fprintf(&b, "cancelled_write_bytes: %d\n", io.Cancelled)
	return b.String()
}

// RenderStat renders st in the format of /proc/stat.
func RenderStat(st Stat) string {
	var b strings.Builder
	row := func(label string, c CPUTimes) {
		fmt.Fprintf(&b, "%s %d %d %d %d %d %d %d %d 0 0\n",
			label, c.User, c.Nice, c.System, c.Idle, c.IOWait, c.IRQ, c.SoftIRQ, c.Steal)
	}
	// The aggregate row uses two spaces after "cpu" on real kernels.
	fmt.Fprintf(&b, "cpu ")
	fmt.Fprintf(&b, " %d %d %d %d %d %d %d %d 0 0\n",
		st.Aggregate.User, st.Aggregate.Nice, st.Aggregate.System, st.Aggregate.Idle,
		st.Aggregate.IOWait, st.Aggregate.IRQ, st.Aggregate.SoftIRQ, st.Aggregate.Steal)
	for _, c := range st.PerCPU {
		row(fmt.Sprintf("cpu%d", c.CPU), c)
	}
	fmt.Fprintf(&b, "ctxt %d\n", st.Ctxt)
	fmt.Fprintf(&b, "btime %d\n", st.BTime)
	fmt.Fprintf(&b, "processes %d\n", st.Processes)
	fmt.Fprintf(&b, "procs_running %d\n", st.Running)
	fmt.Fprintf(&b, "procs_blocked %d\n", st.Blocked)
	return b.String()
}
