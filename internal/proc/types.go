// Package proc models the subset of the Linux /proc virtual filesystem that
// ZeroSum reads: /proc/<pid>/status, /proc/<pid>/task/<tid>/stat,
// /proc/meminfo and /proc/stat. It provides both renderers (used by the
// kernel simulator to serve authentic /proc text) and parsers (used by the
// monitor). Because the monitor always consumes the genuine text format,
// exactly the same monitoring code runs against the simulator and against
// the live /proc of a real Linux host (see RealFS).
package proc

import "zerosum/internal/topology"

// ClockTick is USER_HZ: the jiffies-per-second unit in which /proc reports
// utime and stime. The paper's tables report stime/utime in jiffies.
const ClockTick = 100

// TaskState is the single-letter state code from /proc stat ("R", "S", "D",
// "T", "Z", ...).
type TaskState byte

// Task states as reported in /proc/<pid>/stat field 3.
const (
	StateRunning  TaskState = 'R'
	StateSleeping TaskState = 'S' // interruptible sleep
	StateDisk     TaskState = 'D' // uninterruptible (I/O) sleep
	StateStopped  TaskState = 'T'
	StateZombie   TaskState = 'Z'
	StateIdle     TaskState = 'I' // idle kernel thread
)

// Name returns the human-readable state name used in the "State:" line of
// /proc/<pid>/status.
func (s TaskState) Name() string {
	switch s {
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateDisk:
		return "disk sleep"
	case StateStopped:
		return "stopped"
	case StateZombie:
		return "zombie"
	case StateIdle:
		return "idle"
	default:
		return "unknown"
	}
}

// TaskStat is the parsed content of /proc/<pid>/task/<tid>/stat. Only the
// fields ZeroSum consumes are modelled; the renderer fills the rest with
// zeros exactly where the kernel would put its values.
type TaskStat struct {
	PID       int       // field 1 (the tid for task-level stat)
	Comm      string    // field 2, without parentheses
	State     TaskState // field 3
	PPID      int       // field 4
	MinFlt    uint64    // field 10
	MajFlt    uint64    // field 12
	UTime     uint64    // field 14, jiffies
	STime     uint64    // field 15, jiffies
	Priority  int       // field 18
	Nice      int       // field 19
	NumThrs   int       // field 20
	StartTime uint64    // field 22, jiffies since boot
	VSize     uint64    // field 23, bytes
	RSS       int64     // field 24, pages
	Processor int       // field 39: CPU the task last executed on
	NSwap     uint64    // field 36 (always 0 on modern kernels; kept because the paper's CSV includes "pages swapped")
}

// TaskStatus is the parsed content of /proc/<pid>/status (or a task's
// status file). It carries the affinity and context-switch counters that
// drive the paper's contention analysis.
type TaskStatus struct {
	Name            string
	State           TaskState
	Tgid            int
	Pid             int
	PPid            int
	Threads         int
	VmPeakKB        uint64
	VmSizeKB        uint64
	VmHWMKB         uint64
	VmRSSKB         uint64
	CpusAllowed     topology.CPUSet
	VoluntaryCtxt   uint64
	NonvoluntaryCtx uint64
}

// Meminfo is the parsed content of /proc/meminfo (the fields ZeroSum
// monitors for system-memory contention and OOM forensics).
type Meminfo struct {
	MemTotalKB     uint64
	MemFreeKB      uint64
	MemAvailableKB uint64
	BuffersKB      uint64
	CachedKB       uint64
	SwapTotalKB    uint64
	SwapFreeKB     uint64
	ActiveKB       uint64
	InactiveKB     uint64
}

// TaskIO is the parsed content of /proc/<pid>/io: cumulative I/O issued by
// the process, the counters Darshan-style filesystem monitoring reads.
type TaskIO struct {
	RChar      uint64 // bytes read via syscalls (page cache included)
	WChar      uint64 // bytes written via syscalls
	SyscR      uint64 // read syscall count
	SyscW      uint64 // write syscall count
	ReadBytes  uint64 // bytes actually fetched from storage
	WriteBytes uint64 // bytes actually sent to storage
	Cancelled  uint64 // cancelled_write_bytes
}

// CPUTimes is one "cpuN" row of /proc/stat, in jiffies.
type CPUTimes struct {
	CPU     int // -1 for the aggregate "cpu" row
	User    uint64
	Nice    uint64
	System  uint64
	Idle    uint64
	IOWait  uint64
	IRQ     uint64
	SoftIRQ uint64
	Steal   uint64
}

// Total returns the sum of all time buckets.
func (c CPUTimes) Total() uint64 {
	return c.User + c.Nice + c.System + c.Idle + c.IOWait + c.IRQ + c.SoftIRQ + c.Steal
}

// Stat is the parsed content of /proc/stat.
type Stat struct {
	Aggregate CPUTimes
	PerCPU    []CPUTimes
	Ctxt      uint64 // total context switches since boot
	BTime     uint64 // boot time, seconds since epoch
	Processes uint64
	Running   uint64
	Blocked   uint64
}
