package report

// Golden-file tests for the end-of-run report (paper Listing 2). The
// report is the primary user-facing artifact, so its exact layout is
// pinned byte-for-byte: any formatting drift — including the §3.3
// "stalled" column — must show up as a reviewable diff under testdata/.
//
// Regenerate with:
//
//	go test ./internal/report -run TestGolden -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/obs"
	"zerosum/internal/topology"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenSnap is a richer fixture than sampleSnap: it exercises every
// section the report can render, including a stalled helper thread and
// populated self-observability stats.
func goldenSnap() core.Snapshot {
	var busy core.MinAvgMax
	for _, v := range []float64{3.5, 41.25, 98} {
		busy.Add(v)
	}
	var temp core.MinAvgMax
	for _, v := range []float64{31, 44, 63} {
		temp.Add(v)
	}
	return core.Snapshot{
		DurationSec: 120.500,
		Rank:        2, Size: 8, PID: 40021,
		Hostname:   "frontier00112",
		ProcessAff: topology.RangeCPUSet(0, 7),
		LWPs: []core.ThreadSummary{
			{TID: 40021, Label: "Main, OpenMP", Kind: core.KindMain, STimePct: 10.25, UTimePct: 80.75,
				NVCtx: 12, VCtx: 120400, Affinity: topology.NewCPUSet(0), Beats: 120},
			{TID: 40022, Label: "OpenMP", Kind: core.KindOpenMP, STimePct: 0.05, UTimePct: 0.02,
				NVCtx: 3, VCtx: 87, Affinity: topology.NewCPUSet(1),
				Beats: 4, Stalled: true, StallEvents: 1},
			{TID: 40030, Label: "ZeroSum", Kind: core.KindZeroSum, STimePct: 0.12, UTimePct: 0.21,
				NVCtx: 2, VCtx: 241, Affinity: topology.NewCPUSet(7), Beats: 119},
		},
		HWTs: []core.HWTSummary{
			{CPU: 0, IdlePct: 8.12, SysPct: 10.40, UserPct: 81.30},
			{CPU: 1, IdlePct: 99.90, SysPct: 0.05, UserPct: 0.05},
			{CPU: 7, IdlePct: 98.50, SysPct: 0.70, UserPct: 0.80},
		},
		GPUs: []core.GPUSummary{{
			VisibleIndex: 0, TrueIndex: 4, Model: "AMD MI250X GCD",
			Metrics: []core.GPUMetric{
				{Name: "Device Busy %", Agg: busy},
				{Name: "Temperature (Sensor edge) (C)", Agg: temp},
			},
		}},
		MemTotalKB: 512 << 20, MemMinFreeKB: 100 << 20, MemPeakRSSKB: 4 << 20,
		IOReadBytes: 1 << 22, IOReadSyscalls: 64, IOWriteBytes: 1 << 20, IOWriteSyscall: 16,
		StalledLWPs: 1,
		Self: obs.SelfStats{
			Samples: 120, SelfCPUSec: 0.31, TickWallSec: 0.27,
			ElapsedSec: 120.5, OverheadPct: 0.257, BudgetPct: 0.5,
			Degradations: 0, PeriodSec: 1.0, StalledLWPs: 1,
		},
	}
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch (run with -update after reviewing):\n--- want ---\n%s\n--- got ---\n%s",
			name, want, got)
	}
}

func TestGoldenReportDefault(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, goldenSnap(), Options{}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_default.golden", sb.String())
}

func TestGoldenReportFull(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, goldenSnap(), Options{Contention: true, Memory: true, Self: true}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_full.golden", sb.String())
}

func TestGoldenReportDegraded(t *testing.T) {
	// A run where the watchdog fired: overhead above budget, period doubled.
	snap := goldenSnap()
	snap.Self.OverheadPct = 0.81
	snap.Self.Degradations = 2
	snap.Self.PeriodSec = 4.0
	var sb strings.Builder
	if err := Write(&sb, snap, Options{Self: true}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_degraded.golden", sb.String())
}

func TestGoldenComparison(t *testing.T) {
	healthy := goldenSnap()
	healthy.LWPs[1].Stalled = false
	healthy.LWPs[1].StallEvents = 0
	healthy.StalledLWPs = 0
	var sb strings.Builder
	if err := WriteComparison(&sb, []string{"default", "stalled-helper"},
		[]core.Snapshot{healthy, goldenSnap()}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "comparison.golden", sb.String())
}

func TestGoldenJobSummary(t *testing.T) {
	snaps := make([]core.Snapshot, 4)
	for i := range snaps {
		snaps[i] = goldenSnap()
		snaps[i].Rank = i
		snaps[i].DurationSec = 120.5 + float64(i)*0.25
		if i%2 == 1 {
			snaps[i].Hostname = "frontier00113"
		}
	}
	js, err := Aggregate(snaps, core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJobSummary(&sb, js); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "job_summary.golden", sb.String())
}

// TestGoldenFilesAreCanonical fails if -update would change anything —
// this is the gate `make check` relies on: goldens in the tree must match
// what the code renders today.
func TestGoldenFilesAreCanonical(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".golden") {
			n++
		}
	}
	if want := 5; n != want {
		t.Errorf("expected %d golden files under testdata/, found %d", want, n)
	}
}

// Stall rendering is also asserted directly so a golden regeneration
// cannot silently drop the §3.3 column.
func TestStalledColumnRendered(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, goldenSnap(), Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"stalled: yes",
		"stalled: no",
		fmt.Sprintf("WARNING: %d thread(s) made no progress", 1),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n---\n%s", want, out)
		}
	}
}
