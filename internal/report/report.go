// Package report renders ZeroSum's end-of-run reports in the layout of the
// paper's Listing 2: execution duration, process summary, the LWP (thread)
// table, the hardware (per-HWT) table, and the GPU min/avg/max metric
// table. Rank 0 writes the summary to stdout; every rank writes the same
// report to its log file (paper §3.4).
package report

import (
	"fmt"
	"io"

	"zerosum/internal/core"
)

// Options control optional report sections.
type Options struct {
	// Contention appends the §3.5 contention report (warnings +
	// affinity-overlap findings).
	Contention bool
	// Memory appends system/process memory watermarks.
	Memory bool
	// Self appends the monitor's self-observability section (§4.1):
	// measured overhead, budget state and watchdog degradations.
	Self bool
	// Thresholds tunes the evaluation when Contention is set.
	Thresholds core.EvalThresholds
}

// Write renders the utilization report for one process snapshot.
func Write(w io.Writer, snap core.Snapshot, opts Options) error {
	ew := &errWriter{w: w}
	ew.printf("Duration of execution : %.3f s\n", snap.DurationSec)
	ew.printf("\nProcess Summary:\n")
	rank := "---"
	if snap.Rank >= 0 {
		rank = fmt.Sprintf("%03d", snap.Rank)
	}
	ew.printf("MPI %s - PID %d - Node %s - CPUs allowed: [%s]\n",
		rank, snap.PID, snap.Hostname, snap.ProcessAff)

	ew.printf("\nLWP (thread) Summary:\n")
	for _, l := range snap.LWPs {
		ew.printf("LWP %d: %s - stime: %6.2f, utime: %6.2f, nv_ctx: %d, ctx: %d, CPUs: [%s], stalled: %s\n",
			l.TID, l.Label, l.STimePct, l.UTimePct, l.NVCtx, l.VCtx, l.Affinity, yesNo(l.Stalled))
	}
	if snap.StalledLWPs > 0 {
		ew.printf("WARNING: %d thread(s) made no progress for the configured stall window\n",
			snap.StalledLWPs)
	}

	ew.printf("\nHardware Summary:\n")
	for _, h := range snap.HWTs {
		ew.printf("CPU %03d - idle: %6.2f, system: %6.2f, user: %6.2f\n",
			h.CPU, h.IdlePct, h.SysPct, h.UserPct)
	}

	for _, g := range snap.GPUs {
		ew.printf("\nGPU %d - (metric: min avg max)\n", g.VisibleIndex)
		for _, metric := range g.Metrics {
			ew.printf("    %s: %f %f %f\n",
				metric.Name, metric.Agg.Min, metric.Agg.Avg(), metric.Agg.Max)
		}
	}

	if opts.Memory {
		ew.printf("\nMemory Summary:\n")
		ew.printf("Peak process RSS: %d kB\n", snap.MemPeakRSSKB)
		ew.printf("Minimum system free memory: %d kB of %d kB\n",
			snap.MemMinFreeKB, snap.MemTotalKB)
		if snap.IOReadBytes > 0 || snap.IOWriteBytes > 0 {
			ew.printf("Filesystem I/O: read %d bytes (%d ops), wrote %d bytes (%d ops)\n",
				snap.IOReadBytes, snap.IOReadSyscalls, snap.IOWriteBytes, snap.IOWriteSyscall)
		}
	}

	if opts.Self {
		s := snap.Self
		ew.printf("\nMonitor Self-Report:\n")
		ew.printf("Samples: %d at period %.3f s\n", s.Samples, s.PeriodSec)
		ew.printf("Self overhead: %.3f%% (self CPU %.4f s, tick wall %.4f s over %.3f s)\n",
			s.OverheadPct, s.SelfCPUSec, s.TickWallSec, s.ElapsedSec)
		if s.BudgetPct > 0 {
			ew.printf("Overhead budget: %.2f%% - degradations: %d\n", s.BudgetPct, s.Degradations)
		}
	}

	if opts.Contention {
		ew.printf("\nContention Report:\n")
		warnings := core.Evaluate(snap, opts.Thresholds)
		if len(warnings) == 0 {
			ew.printf("no contention or misconfiguration detected\n")
		}
		for _, warn := range warnings {
			ew.printf("%s\n", warn)
		}
	}
	return ew.err
}

// WriteComparison renders several labelled snapshots' LWP tables side by
// side summary statistics — the format used by cmd/experiments to print the
// paper's Tables 1-3 one after another.
func WriteComparison(w io.Writer, labels []string, snaps []core.Snapshot) error {
	if len(labels) != len(snaps) {
		return fmt.Errorf("report: %d labels for %d snapshots", len(labels), len(snaps))
	}
	for i, snap := range snaps {
		if _, err := fmt.Fprintf(w, "=== %s (%.2f s) ===\n", labels[i], snap.DurationSec); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%-8s %-14s %8s %8s %10s %8s %8s  %s\n",
			"LWP", "Type", "stime", "utime", "nvctx", "ctx", "stalled", "CPUs"); err != nil {
			return err
		}
		for _, l := range snap.LWPs {
			if _, err := fmt.Fprintf(w, "%-8d %-14s %8.2f %8.2f %10d %8d %8s  %s\n",
				l.TID, l.Label, l.STimePct, l.UTimePct, l.NVCtx, l.VCtx, yesNo(l.Stalled), l.Affinity); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
