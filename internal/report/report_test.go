package report

import (
	"strings"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/topology"
)

func sampleSnap() core.Snapshot {
	var busy core.MinAvgMax
	for _, v := range []float64{0, 14.6, 52} {
		busy.Add(v)
	}
	return core.Snapshot{
		DurationSec: 210.878,
		Rank:        0, Size: 8, PID: 51334,
		Hostname:   "frontier09085",
		ProcessAff: topology.RangeCPUSet(1, 7),
		LWPs: []core.ThreadSummary{
			{TID: 51334, Label: "Main, OpenMP", Kind: core.KindMain, STimePct: 12.48, UTimePct: 63.94,
				NVCtx: 4, VCtx: 365488, Affinity: topology.NewCPUSet(1)},
			{TID: 51343, Label: "ZeroSum", Kind: core.KindZeroSum, STimePct: 0.15, UTimePct: 0.26,
				NVCtx: 9, VCtx: 679, Affinity: topology.NewCPUSet(7)},
		},
		HWTs: []core.HWTSummary{
			{CPU: 1, IdlePct: 22.70, SysPct: 12.42, UserPct: 64.52},
			{CPU: 2, IdlePct: 99.82},
		},
		GPUs: []core.GPUSummary{{
			VisibleIndex: 0, TrueIndex: 4, Model: "AMD MI250X GCD",
			Metrics: []core.GPUMetric{{Name: "Device Busy %", Agg: busy}},
		}},
		MemTotalKB: 512 << 20, MemMinFreeKB: 100 << 20, MemPeakRSSKB: 4 << 20,
	}
}

func TestWriteListing2Layout(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, sampleSnap(), Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Duration of execution : 210.878 s",
		"Process Summary:",
		"MPI 000 - PID 51334 - Node frontier09085 - CPUs allowed: [1-7]",
		"LWP (thread) Summary:",
		"LWP 51334: Main, OpenMP - stime:  12.48, utime:  63.94, nv_ctx: 4, ctx: 365488, CPUs: [1]",
		"LWP 51343: ZeroSum",
		"Hardware Summary:",
		"CPU 001 - idle:  22.70, system:  12.42, user:  64.52",
		"CPU 002 - idle:  99.82",
		"GPU 0 - (metric: min avg max)",
		"Device Busy %: 0.000000 22.200000 52.000000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n---\n%s", want, out)
		}
	}
	// No optional sections by default.
	if strings.Contains(out, "Contention Report") || strings.Contains(out, "Memory Summary") {
		t.Error("optional sections should be off by default")
	}
}

func TestWriteOptionalSections(t *testing.T) {
	var sb strings.Builder
	snap := sampleSnap()
	if err := Write(&sb, snap, Options{Contention: true, Memory: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Memory Summary:") {
		t.Error("memory section missing")
	}
	if !strings.Contains(out, "Contention Report:") {
		t.Error("contention section missing")
	}
	// This snapshot has an idle CPU 2 and a barely-busy GPU: warnings.
	if !strings.Contains(out, "idle-gpu") && !strings.Contains(out, "underutilization") {
		t.Errorf("expected warnings in:\n%s", out)
	}
}

func TestWriteNoRank(t *testing.T) {
	snap := sampleSnap()
	snap.Rank = -1
	var sb strings.Builder
	if err := Write(&sb, snap, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "MPI --- - PID") {
		t.Errorf("rankless header: %s", sb.String())
	}
}

func TestWriteComparison(t *testing.T) {
	var sb strings.Builder
	snaps := []core.Snapshot{sampleSnap(), sampleSnap()}
	if err := WriteComparison(&sb, []string{"default", "-c7"}, snaps); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "===") != 4 { // two headers, each with two markers
		t.Errorf("comparison headers: %s", out)
	}
	if !strings.Contains(out, "default") || !strings.Contains(out, "-c7") {
		t.Error("labels missing")
	}
	if err := WriteComparison(&sb, []string{"one"}, snaps); err == nil {
		t.Error("mismatched labels should error")
	}
}

func TestWriteCleanContention(t *testing.T) {
	snap := core.Snapshot{
		DurationSec: 1, PID: 1, Rank: -1, Hostname: "n",
		MemTotalKB: 1 << 20, MemMinFreeKB: 1 << 19,
	}
	var sb strings.Builder
	if err := Write(&sb, snap, Options{Contention: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no contention or misconfiguration detected") {
		t.Errorf("clean report: %s", sb.String())
	}
}
