package report

import (
	"fmt"
	"io"
	"sort"

	"zerosum/internal/analysis"
	"zerosum/internal/core"
)

// JobSummary aggregates per-rank snapshots into the allocation-wide view
// the paper motivates ("the htop view ... but for all nodes in a given
// allocation, and for all resources at their disposal", §2).
type JobSummary struct {
	Ranks int
	Nodes map[string]int // hostname -> rank count

	Runtime analysis.Summary // per-rank durations

	// Utilization of busy application threads across all ranks.
	ThreadUser analysis.Summary
	ThreadSys  analysis.Summary

	// Contention totals.
	TotalNVCtx  uint64
	TotalVCtx   uint64
	WorstNVCtx  uint64
	WorstRank   int
	SlowestRank int

	// Progress detection (§3.3): threads still flagged stalled at the end
	// of the run, and distinct stall episodes observed across the job.
	StalledLWPs int
	StallEvents int

	// GPUBusy aggregates "Device Busy %" averages across all devices.
	GPUBusy *analysis.Summary

	// Warnings aggregates configuration-evaluation findings by kind.
	Warnings map[core.WarningKind]int
}

// Aggregate builds a JobSummary from every rank's snapshot.
func Aggregate(snaps []core.Snapshot, th core.EvalThresholds) (*JobSummary, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("report: no snapshots to aggregate")
	}
	js := &JobSummary{
		Ranks:    len(snaps),
		Nodes:    map[string]int{},
		Warnings: map[core.WarningKind]int{},
	}
	var durations, users, syss, gpuBusy []float64
	slowest := -1.0
	for i, snap := range snaps {
		js.Nodes[snap.Hostname]++
		durations = append(durations, snap.DurationSec)
		if snap.DurationSec > slowest {
			slowest = snap.DurationSec
			js.SlowestRank = rankOf(snap, i)
		}
		js.StalledLWPs += snap.StalledLWPs
		for _, l := range snap.LWPs {
			js.TotalNVCtx += l.NVCtx
			js.TotalVCtx += l.VCtx
			js.StallEvents += l.StallEvents
			if l.NVCtx > js.WorstNVCtx {
				js.WorstNVCtx = l.NVCtx
				js.WorstRank = rankOf(snap, i)
			}
			if l.Kind == core.KindOpenMP || l.Kind == core.KindMain {
				users = append(users, l.UTimePct)
				syss = append(syss, l.STimePct)
			}
		}
		for _, g := range snap.GPUs {
			for _, metric := range g.Metrics {
				if metric.Name == "Device Busy %" {
					gpuBusy = append(gpuBusy, metric.Agg.Avg())
				}
			}
		}
		for _, w := range core.Evaluate(snap, th) {
			js.Warnings[w.Kind]++
		}
	}
	js.Runtime = analysis.Summarize(durations)
	if len(users) > 0 {
		js.ThreadUser = analysis.Summarize(users)
		js.ThreadSys = analysis.Summarize(syss)
	}
	if len(gpuBusy) > 0 {
		s := analysis.Summarize(gpuBusy)
		js.GPUBusy = &s
	}
	return js, nil
}

func rankOf(snap core.Snapshot, fallback int) int {
	if snap.Rank >= 0 {
		return snap.Rank
	}
	return fallback
}

// WriteJobSummary renders the aggregated view.
func WriteJobSummary(w io.Writer, js *JobSummary) error {
	ew := &errWriter{w: w}
	ew.printf("Job Summary: %d ranks on %d node(s)\n", js.Ranks, len(js.Nodes))
	hosts := make([]string, 0, len(js.Nodes))
	for h := range js.Nodes {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		ew.printf("  node %-24s %d rank(s)\n", h, js.Nodes[h])
	}
	ew.printf("Rank duration: %s (slowest: rank %d)\n", js.Runtime, js.SlowestRank)
	if js.ThreadUser.N > 0 {
		ew.printf("App-thread utilization: user %.2f%% ± %.2f, system %.2f%% ± %.2f (over %d threads)\n",
			js.ThreadUser.Mean, js.ThreadUser.Std, js.ThreadSys.Mean, js.ThreadSys.Std, js.ThreadUser.N)
	}
	ew.printf("Context switches: %d involuntary, %d voluntary (worst LWP: %d on rank %d)\n",
		js.TotalNVCtx, js.TotalVCtx, js.WorstNVCtx, js.WorstRank)
	if js.StalledLWPs > 0 || js.StallEvents > 0 {
		ew.printf("Progress: %d thread(s) stalled at end of run, %d stall episode(s) observed\n",
			js.StalledLWPs, js.StallEvents)
	}
	if js.GPUBusy != nil {
		ew.printf("GPU busy: %.2f%% mean across %d device(s) (min %.2f, max %.2f)\n",
			js.GPUBusy.Mean, js.GPUBusy.N, js.GPUBusy.Min, js.GPUBusy.Max)
	}
	if len(js.Warnings) > 0 {
		ew.printf("Configuration findings across ranks:\n")
		kinds := make([]core.WarningKind, 0, len(js.Warnings))
		for k := range js.Warnings {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, k := range kinds {
			ew.printf("  %-18s x%d\n", k.String(), js.Warnings[k])
		}
	} else {
		ew.printf("Configuration findings: none\n")
	}
	return ew.err
}
