package report

import (
	"strings"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/topology"
)

func multiRankSnaps() []core.Snapshot {
	var snaps []core.Snapshot
	for r := 0; r < 4; r++ {
		host := "node-a"
		if r >= 2 {
			host = "node-b"
		}
		snap := core.Snapshot{
			DurationSec: 27.0 + float64(r)*0.1,
			Rank:        r, Size: 4, PID: 1000 + r,
			Hostname:   host,
			ProcessAff: topology.RangeCPUSet(1, 7),
			MemTotalKB: 1 << 20, MemMinFreeKB: 1 << 19,
		}
		for i := 0; i < 7; i++ {
			snap.LWPs = append(snap.LWPs, core.ThreadSummary{
				TID: 100*r + i, Kind: core.KindOpenMP, Label: "OpenMP",
				UTimePct: 95, STimePct: 1.2,
				NVCtx:    uint64(r * 10),
				VCtx:     50,
				Affinity: topology.NewCPUSet(i + 1), ObservedCPUs: topology.NewCPUSet(i + 1),
			})
			snap.HWTs = append(snap.HWTs, core.HWTSummary{CPU: i + 1, UserPct: 95, IdlePct: 4})
		}
		snaps = append(snaps, snap)
	}
	return snaps
}

func TestAggregate(t *testing.T) {
	snaps := multiRankSnaps()
	js, err := Aggregate(snaps, core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if js.Ranks != 4 || len(js.Nodes) != 2 {
		t.Fatalf("ranks=%d nodes=%d", js.Ranks, len(js.Nodes))
	}
	if js.Nodes["node-a"] != 2 || js.Nodes["node-b"] != 2 {
		t.Fatalf("node counts: %v", js.Nodes)
	}
	if js.SlowestRank != 3 {
		t.Fatalf("slowest = %d, want 3", js.SlowestRank)
	}
	if js.WorstRank != 3 || js.WorstNVCtx != 30 {
		t.Fatalf("worst = rank %d nvctx %d", js.WorstRank, js.WorstNVCtx)
	}
	if js.TotalNVCtx != 7*(0+10+20+30) {
		t.Fatalf("total nvctx = %d", js.TotalNVCtx)
	}
	if js.ThreadUser.N != 28 || js.ThreadUser.Mean != 95 {
		t.Fatalf("thread user = %+v", js.ThreadUser)
	}
	if js.GPUBusy != nil {
		t.Fatal("no GPUs expected")
	}
	if len(js.Warnings) != 0 {
		t.Fatalf("clean job warnings: %v", js.Warnings)
	}
}

func TestAggregateWithWarningsAndGPU(t *testing.T) {
	snaps := multiRankSnaps()
	// Make rank 0 misconfigured: two busy threads on one CPU.
	snaps[0].LWPs[1].Affinity = topology.NewCPUSet(1)
	var busy core.MinAvgMax
	busy.Add(2.0)
	snaps[0].GPUs = append(snaps[0].GPUs, core.GPUSummary{
		Metrics: []core.GPUMetric{{Name: "Device Busy %", Agg: busy}},
	})
	js, err := Aggregate(snaps, core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if js.Warnings[core.WarnAffinityOverlap] == 0 {
		t.Fatalf("warnings: %v", js.Warnings)
	}
	if js.GPUBusy == nil || js.GPUBusy.Mean != 2.0 {
		t.Fatalf("gpu busy: %+v", js.GPUBusy)
	}
	var sb strings.Builder
	if err := WriteJobSummary(&sb, js); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Job Summary: 4 ranks on 2 node(s)",
		"node-a",
		"slowest: rank 3",
		"affinity-overlap",
		"GPU busy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestAggregateHeterogeneousNodes feeds Aggregate the shape the cluster
// aggregator produces: ranks from different node types reporting different
// hardware-thread counts, different thread counts, and GPU samples on only
// a subset of the ranks.
func TestAggregateHeterogeneousNodes(t *testing.T) {
	mkRank := func(rank int, host string, hwts, lwps int) core.Snapshot {
		snap := core.Snapshot{
			DurationSec: 10 + float64(rank),
			Rank:        rank, Size: 3, PID: 2000 + rank,
			Hostname:   host,
			ProcessAff: topology.RangeCPUSet(0, hwts-1),
			MemTotalKB: 1 << 20, MemMinFreeKB: 1 << 19,
		}
		for i := 0; i < lwps; i++ {
			snap.LWPs = append(snap.LWPs, core.ThreadSummary{
				TID: 100*rank + i, Kind: core.KindOpenMP, Label: "OpenMP",
				UTimePct: 90 + float64(rank), STimePct: 1,
				NVCtx:    uint64(rank),
				VCtx:     10,
				Affinity: topology.NewCPUSet(i), ObservedCPUs: topology.NewCPUSet(i),
			})
		}
		for i := 0; i < hwts; i++ {
			snap.HWTs = append(snap.HWTs, core.HWTSummary{CPU: i, UserPct: 80, IdlePct: 15})
		}
		return snap
	}
	// A fat GPU node, a thin CPU-only node, and a rank whose monitor
	// produced no per-thread data at all (e.g. it was sampled too briefly).
	fat := mkRank(0, "gpu-node", 16, 8)
	var busy core.MinAvgMax
	busy.Add(70)
	busy.Add(90)
	fat.GPUs = append(fat.GPUs, core.GPUSummary{
		Metrics: []core.GPUMetric{{Name: "Device Busy %", Agg: busy}},
	})
	thin := mkRank(1, "cpu-node", 4, 2)
	bare := mkRank(2, "cpu-node", 4, 0)

	js, err := Aggregate([]core.Snapshot{fat, thin, bare}, core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if js.Ranks != 3 || len(js.Nodes) != 2 {
		t.Fatalf("ranks=%d nodes=%v", js.Ranks, js.Nodes)
	}
	if js.Nodes["gpu-node"] != 1 || js.Nodes["cpu-node"] != 2 {
		t.Fatalf("node counts: %v", js.Nodes)
	}
	// Thread stats pool across ranks regardless of per-rank thread count:
	// 8 busy threads from the fat rank plus 2 from the thin one.
	if js.ThreadUser.N != 10 {
		t.Fatalf("thread user N = %d, want 10", js.ThreadUser.N)
	}
	if js.ThreadUser.Min != 90 || js.ThreadUser.Max != 91 {
		t.Fatalf("thread user spread: %+v", js.ThreadUser)
	}
	// GPU stats come only from ranks that reported GPU samples.
	if js.GPUBusy == nil || js.GPUBusy.N != 1 || js.GPUBusy.Mean != 80 {
		t.Fatalf("gpu busy: %+v", js.GPUBusy)
	}
	if js.SlowestRank != 2 {
		t.Fatalf("slowest = %d, want 2 (the bare rank)", js.SlowestRank)
	}
	if js.TotalNVCtx != 0*8+1*2+2*0 {
		t.Fatalf("total nvctx = %d", js.TotalNVCtx)
	}
	var sb strings.Builder
	if err := WriteJobSummary(&sb, js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 ranks on 2 node(s)") {
		t.Fatalf("summary: %s", sb.String())
	}
}

// TestAggregateUnrankedSnapshots covers snapshots that never learned their
// MPI rank (Rank < 0): slowest/worst attribution falls back to slice order.
func TestAggregateUnrankedSnapshots(t *testing.T) {
	snaps := multiRankSnaps()[:2]
	for i := range snaps {
		snaps[i].Rank = -1
	}
	snaps[1].DurationSec = 99
	snaps[1].LWPs[0].NVCtx = 1234
	js, err := Aggregate(snaps, core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if js.SlowestRank != 1 || js.WorstRank != 1 {
		t.Fatalf("fallback attribution: slowest=%d worst=%d", js.SlowestRank, js.WorstRank)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if _, err := Aggregate(nil, core.EvalThresholds{}); err == nil {
		t.Fatal("empty aggregate should error")
	}
}

func TestWriteJobSummaryClean(t *testing.T) {
	js, err := Aggregate(multiRankSnaps(), core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJobSummary(&sb, js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Configuration findings: none") {
		t.Fatalf("clean summary: %s", sb.String())
	}
}
