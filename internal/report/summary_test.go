package report

import (
	"strings"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/topology"
)

func multiRankSnaps() []core.Snapshot {
	var snaps []core.Snapshot
	for r := 0; r < 4; r++ {
		host := "node-a"
		if r >= 2 {
			host = "node-b"
		}
		snap := core.Snapshot{
			DurationSec: 27.0 + float64(r)*0.1,
			Rank:        r, Size: 4, PID: 1000 + r,
			Hostname:   host,
			ProcessAff: topology.RangeCPUSet(1, 7),
			MemTotalKB: 1 << 20, MemMinFreeKB: 1 << 19,
		}
		for i := 0; i < 7; i++ {
			snap.LWPs = append(snap.LWPs, core.ThreadSummary{
				TID: 100*r + i, Kind: core.KindOpenMP, Label: "OpenMP",
				UTimePct: 95, STimePct: 1.2,
				NVCtx:    uint64(r * 10),
				VCtx:     50,
				Affinity: topology.NewCPUSet(i + 1), ObservedCPUs: topology.NewCPUSet(i + 1),
			})
			snap.HWTs = append(snap.HWTs, core.HWTSummary{CPU: i + 1, UserPct: 95, IdlePct: 4})
		}
		snaps = append(snaps, snap)
	}
	return snaps
}

func TestAggregate(t *testing.T) {
	snaps := multiRankSnaps()
	js, err := Aggregate(snaps, core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if js.Ranks != 4 || len(js.Nodes) != 2 {
		t.Fatalf("ranks=%d nodes=%d", js.Ranks, len(js.Nodes))
	}
	if js.Nodes["node-a"] != 2 || js.Nodes["node-b"] != 2 {
		t.Fatalf("node counts: %v", js.Nodes)
	}
	if js.SlowestRank != 3 {
		t.Fatalf("slowest = %d, want 3", js.SlowestRank)
	}
	if js.WorstRank != 3 || js.WorstNVCtx != 30 {
		t.Fatalf("worst = rank %d nvctx %d", js.WorstRank, js.WorstNVCtx)
	}
	if js.TotalNVCtx != 7*(0+10+20+30) {
		t.Fatalf("total nvctx = %d", js.TotalNVCtx)
	}
	if js.ThreadUser.N != 28 || js.ThreadUser.Mean != 95 {
		t.Fatalf("thread user = %+v", js.ThreadUser)
	}
	if js.GPUBusy != nil {
		t.Fatal("no GPUs expected")
	}
	if len(js.Warnings) != 0 {
		t.Fatalf("clean job warnings: %v", js.Warnings)
	}
}

func TestAggregateWithWarningsAndGPU(t *testing.T) {
	snaps := multiRankSnaps()
	// Make rank 0 misconfigured: two busy threads on one CPU.
	snaps[0].LWPs[1].Affinity = topology.NewCPUSet(1)
	var busy core.MinAvgMax
	busy.Add(2.0)
	snaps[0].GPUs = append(snaps[0].GPUs, core.GPUSummary{
		Metrics: []core.GPUMetric{{Name: "Device Busy %", Agg: busy}},
	})
	js, err := Aggregate(snaps, core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if js.Warnings[core.WarnAffinityOverlap] == 0 {
		t.Fatalf("warnings: %v", js.Warnings)
	}
	if js.GPUBusy == nil || js.GPUBusy.Mean != 2.0 {
		t.Fatalf("gpu busy: %+v", js.GPUBusy)
	}
	var sb strings.Builder
	if err := WriteJobSummary(&sb, js); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Job Summary: 4 ranks on 2 node(s)",
		"node-a",
		"slowest: rank 3",
		"affinity-overlap",
		"GPU busy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	if _, err := Aggregate(nil, core.EvalThresholds{}); err == nil {
		t.Fatal("empty aggregate should error")
	}
}

func TestWriteJobSummaryClean(t *testing.T) {
	js, err := Aggregate(multiRankSnaps(), core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJobSummary(&sb, js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Configuration findings: none") {
		t.Fatalf("clean summary: %s", sb.String())
	}
}
