package scenario

import (
	"fmt"

	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

// ExecOptions shape how a generated JobSpec becomes a runnable
// workload.Config when a scenario is executed for real (zsrun -scenario)
// rather than only scheduled.
type ExecOptions struct {
	// Machine builds one simulated node (a topology preset constructor);
	// nil uses the laptop preset — scenario fleets run many jobs, so the
	// default node is deliberately small.
	Machine func() *topology.Machine
	// TimeScale compresses each job's scheduled Duration into simulated
	// app runtime: simulated ≈ Duration × TimeScale. Default 0.05 — a
	// 60 s scheduled job simulates ~3 s of app time, keeping a 100-job
	// fleet tractable while preserving the jobs' relative weights.
	TimeScale float64
	// Monitor is applied to every rank of every job (streams wired by the
	// caller via MonitorConfig.StreamFor).
	Monitor workload.MonitorConfig
}

func (o ExecOptions) withDefaults() ExecOptions {
	if o.Machine == nil {
		o.Machine = topology.Laptop4Core
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 0.05
	}
	return o
}

// BuildJob maps spec onto a runnable workload.Config: ranks and threads
// from the spec, the app profile scaled so its simulated runtime tracks
// the scheduled duration, and the spec's private seed driving all
// randomness. nodes is how many simulated nodes the job spans (the
// scheduler's placement count; 0 derives it from the rank count).
func BuildJob(spec JobSpec, nodes int, opt ExecOptions) (workload.Config, error) {
	opt = opt.withDefaults()
	if nodes <= 0 {
		nodes = (spec.Ranks + 3) / 4
		if nodes < 1 {
			nodes = 1
		}
	}
	simDur := sim.Time(float64(spec.Duration) * opt.TimeScale)
	if simDur < sim.Second {
		simDur = sim.Second
	}
	app, err := buildApp(spec, simDur)
	if err != nil {
		return workload.Config{}, err
	}
	cfg := workload.Config{
		Machine: opt.Machine,
		Nodes:   nodes,
		App:     app,
		Srun: slurm.Options{
			NTasks:       spec.Ranks,
			CoresPerTask: spec.CPUsPerRank,
			GPUsPerTask:  spec.GPUsPerRank,
		},
		Monitor: opt.Monitor,
		Seed:    spec.Seed,
		// Runaway guard: well past the scaled duration but far below the
		// workload default hour.
		MaxSimTime: simDur*4 + 10*sim.Second,
	}
	return cfg, nil
}

// buildApp instantiates the spec's app profile, scaling step counts so
// the simulated runtime is roughly simDur.
func buildApp(spec JobSpec, simDur sim.Time) (workload.App, error) {
	switch spec.App {
	case AppMiniQMC:
		mq := workload.DefaultMiniQMC()
		mq.Threads = spec.Threads
		mq.Steps = clampSteps(simDur, mq.WorkPerStep, 4, 96)
		return mq, nil
	case AppPIC:
		pic := workload.DefaultPICHalo()
		pic.Steps = clampSteps(simDur, pic.ComputePerStep, 4, 50)
		return pic, nil
	case AppStall:
		st := workload.DefaultStaller()
		st.Threads = spec.Threads
		st.Until = simDur
		st.StallAt = simDur / 3
		st.StallFor = simDur / 3
		return st, nil
	default:
		return nil, fmt.Errorf("scenario: job %s has unknown app %q", spec.ID, spec.App)
	}
}

func clampSteps(simDur, perStep sim.Time, lo, hi int) int {
	if perStep <= 0 {
		return lo
	}
	n := int(simDur / perStep)
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}
