// Package fairness turns a scenario scheduler run into the fairness
// metrics the paper-adjacent schedulers report: share-over-time per
// queue, time-averaged dominant-resource share, starvation and
// preemption counts, and the allocation-history CSV (the golden-tested
// artifact other tooling consumes). The shape follows KAI-Scheduler's
// time-aware fairness simulator output.
package fairness

import (
	"fmt"
	"io"
	"sort"

	"zerosum/internal/scenario"
)

// Point is one step of a queue's share-over-time series: the share held
// from At until the next point.
type Point struct {
	AtSec    float64
	CPUShare float64
	GPUShare float64
}

// QueueMetrics summarizes one queue over the whole run.
type QueueMetrics struct {
	Queue     string
	FairShare float64
	// TimeAvgCPUShare / TimeAvgGPUShare integrate the share series over
	// the run horizon; DominantShare is the larger of the two — the DRF
	// coordinate the scheduler balanced on.
	TimeAvgCPUShare          float64
	TimeAvgGPUShare          float64
	DominantShare            float64
	PeakCPUShare             float64
	Jobs, Finished, Rejected int
	Preemptions, Starved     int
	AvgWaitSec, MaxWaitSec   float64
}

// Report is the full fairness verdict for one scheduler run.
type Report struct {
	Scenario   string
	HorizonSec float64
	Queues     []QueueMetrics
	// JainIndex is Jain's fairness index over the queues'
	// dominant-share/fair-share ratios: 1.0 is perfectly weighted-fair.
	JainIndex float64
	// CPUTimeAllocatedSec integrates cluster-wide allocated slots over
	// time; CPUTimeUsedSec sums per-job CPU-seconds — the two agree when
	// the event history conserves allocations.
	CPUTimeAllocatedSec float64
	CPUTimeUsedSec      float64
	TotalPreemptions    int
	TotalStarved        int
	TotalRejected       int
}

// Series reconstructs a queue's share-over-time from the allocation
// history (one point per event touching that queue).
func Series(res *scenario.Result, queue string) []Point {
	var out []Point
	var gpuAlloc float64
	for _, ev := range res.Events {
		if ev.Queue != queue {
			continue
		}
		gpuAlloc += gpuDelta(ev)
		gpu := 0.0
		if res.CapacityGPUs > 0 {
			gpu = gpuAlloc / float64(res.CapacityGPUs)
		}
		out = append(out, Point{AtSec: ev.At.Seconds(), CPUShare: ev.QueueShare, GPUShare: gpu})
	}
	return out
}

// gpuDelta is the change ev makes to its queue's GPU allocation; events
// only snapshot the CPU side, so the GPU series is replayed from deltas.
func gpuDelta(ev scenario.Event) float64 {
	switch ev.Kind {
	case scenario.EventAdmit:
		return float64(ev.GPUs)
	case scenario.EventPreempt, scenario.EventFinish:
		return -float64(ev.GPUs)
	default:
		return 0
	}
}

// Compute derives the fairness report from a scheduler run.
func Compute(res *scenario.Result) *Report {
	rep := &Report{Scenario: res.Cfg.Name, HorizonSec: res.HorizonSec}
	type acc struct {
		cpuInt, gpuInt               float64 // share·seconds integrals
		peak                         float64
		lastAt                       float64
		cpuShare, gpuShare, gpuAlloc float64
		m                            QueueMetrics
	}
	accs := map[string]*acc{}
	order := []string{}
	for _, ev := range res.Events {
		if _, ok := accs[ev.Queue]; !ok {
			accs[ev.Queue] = &acc{m: QueueMetrics{Queue: ev.Queue, FairShare: ev.FairShare}}
			order = append(order, ev.Queue)
		}
	}
	sort.Strings(order)

	// Integrate each queue's share between consecutive events, and the
	// cluster-wide allocation alongside.
	var lastAt, totalShare float64
	for _, ev := range res.Events {
		at := ev.At.Seconds()
		rep.CPUTimeAllocatedSec += totalShare * (at - lastAt) * float64(res.CapacityCPUs)
		lastAt = at
		totalShare = float64(ev.TotalCPUs) / float64(res.CapacityCPUs)

		a := accs[ev.Queue]
		a.cpuInt += a.cpuShare * (at - a.lastAt)
		a.gpuInt += a.gpuShare * (at - a.lastAt)
		a.lastAt = at
		a.cpuShare = ev.QueueShare
		a.gpuAlloc += gpuDelta(ev)
		if res.CapacityGPUs > 0 {
			a.gpuShare = a.gpuAlloc / float64(res.CapacityGPUs)
		}
		if a.cpuShare > a.peak {
			a.peak = a.cpuShare
		}
	}
	// Close every series at the horizon.
	for _, name := range order {
		a := accs[name]
		a.cpuInt += a.cpuShare * (res.HorizonSec - a.lastAt)
		a.gpuInt += a.gpuShare * (res.HorizonSec - a.lastAt)
	}

	for _, o := range res.Jobs {
		a := accs[o.Spec.Queue]
		if a == nil {
			continue
		}
		a.m.Jobs++
		rep.CPUTimeUsedSec += o.CPUSeconds
		if o.Done {
			a.m.Finished++
		}
		if o.Rejected {
			a.m.Rejected++
			rep.TotalRejected++
		}
		a.m.Preemptions += o.Preemptions
		rep.TotalPreemptions += o.Preemptions
		if o.Starved {
			a.m.Starved++
			rep.TotalStarved++
		}
		if !o.Rejected {
			a.m.AvgWaitSec += o.WaitSec
			if o.WaitSec > a.m.MaxWaitSec {
				a.m.MaxWaitSec = o.WaitSec
			}
		}
	}

	var ratios []float64
	for _, name := range order {
		a := accs[name]
		if res.HorizonSec > 0 {
			a.m.TimeAvgCPUShare = a.cpuInt / res.HorizonSec
			a.m.TimeAvgGPUShare = a.gpuInt / res.HorizonSec
		}
		a.m.DominantShare = a.m.TimeAvgCPUShare
		if a.m.TimeAvgGPUShare > a.m.DominantShare {
			a.m.DominantShare = a.m.TimeAvgGPUShare
		}
		a.m.PeakCPUShare = a.peak
		if n := a.m.Jobs - a.m.Rejected; n > 0 {
			a.m.AvgWaitSec /= float64(n)
		}
		if a.m.FairShare > 0 {
			ratios = append(ratios, a.m.DominantShare/a.m.FairShare)
		}
		rep.Queues = append(rep.Queues, a.m)
	}
	rep.JainIndex = jain(ratios)
	return rep
}

// jain computes Jain's fairness index: (Σx)² / (n·Σx²).
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Write renders the report as a human-readable table.
func (r *Report) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "scenario %s: horizon %.1fs, jain %.4f, preemptions %d, starved %d, rejected %d\n",
		r.Scenario, r.HorizonSec, r.JainIndex, r.TotalPreemptions, r.TotalStarved, r.TotalRejected); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "cpu-time allocated %.1fs, used %.1fs\n",
		r.CPUTimeAllocatedSec, r.CPUTimeUsedSec); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %5s %5s %6s %7s %8s %8s\n",
		"queue", "fair", "avg-cpu", "avg-gpu", "peak", "jobs", "done", "preempt", "starved", "avg-wait", "max-wait"); err != nil {
		return err
	}
	for _, q := range r.Queues {
		if _, err := fmt.Fprintf(w, "%-10s %8.4f %8.4f %8.4f %8.4f %5d %5d %6d %7d %7.1fs %7.1fs\n",
			q.Queue, q.FairShare, q.TimeAvgCPUShare, q.TimeAvgGPUShare, q.PeakCPUShare,
			q.Jobs, q.Finished, q.Preemptions, q.Starved, q.AvgWaitSec, q.MaxWaitSec); err != nil {
			return err
		}
	}
	return nil
}

// CSVHeader is the allocation-history column schema (docs/scenarios.md).
const CSVHeader = "time_sec,event,job,queue,ranks,cpus,gpus,queue_cpus,queue_share,fair_share,total_cpus,overlap_cpus,pending"

// WriteAllocCSV writes the allocation history as CSV. Output is a pure
// function of the scheduler run: the same config and seed reproduce
// byte-identical bytes (golden-tested).
func WriteAllocCSV(w io.Writer, res *scenario.Result) error {
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	for _, ev := range res.Events {
		if _, err := fmt.Fprintf(w, "%.6f,%s,%s,%s,%d,%d,%d,%d,%.6f,%.6f,%d,%d,%d\n",
			ev.At.Seconds(), ev.Kind, ev.Job, ev.Queue,
			ev.Ranks, ev.CPUs, ev.GPUs,
			ev.QueueCPUs, ev.QueueShare, ev.FairShare,
			ev.TotalCPUs, ev.OverlapCPUs, ev.Pending); err != nil {
			return err
		}
	}
	return nil
}
