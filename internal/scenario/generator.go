package scenario

import (
	"fmt"

	"zerosum/internal/sim"
)

// JobSpec is one sampled job: everything the scheduler and the workload
// executor need, fixed at generation time so the schedule is a pure
// function of (Config, seed).
type JobSpec struct {
	// ID is the job's stable identifier ("<scenario>-j<NNN>").
	ID string `json:"id"`
	// Index is the job's position in submission order (0-based).
	Index int `json:"index"`
	// Queue names the scheduling queue the job was submitted to.
	Queue string `json:"queue"`
	// Arrival is the submission time on the scenario clock.
	Arrival sim.Time `json:"arrival_ns"`
	// Duration is the occupancy the job needs; preemption pauses it and
	// the remainder runs after readmission.
	Duration sim.Time `json:"duration_ns"`
	// Ranks is the number of MPI ranks (processes).
	Ranks int `json:"ranks"`
	// Threads is the worker-thread (LWP) count per rank.
	Threads int `json:"threads"`
	// CPUsPerRank is the CPU slots each rank occupies on its node.
	CPUsPerRank int `json:"cpus_per_rank"`
	// GPUsPerRank is the GPU devices each rank demands (0 = CPU-only).
	GPUsPerRank int `json:"gpus_per_rank"`
	// App is the proxy application profile (AppMiniQMC, AppPIC, AppStall).
	App string `json:"app"`
	// Seed is the job-private RNG seed for workload execution.
	Seed uint64 `json:"seed"`
}

// TotalCPUs is the job's cluster-wide CPU-slot demand.
func (s JobSpec) TotalCPUs() int { return s.Ranks * s.CPUsPerRank }

// TotalGPUs is the job's cluster-wide GPU demand.
func (s JobSpec) TotalGPUs() int { return s.Ranks * s.GPUsPerRank }

// Generator samples job specs from a seeded RNG. Draw order is part of
// the wire-in-stone replay contract: per job it is inter-arrival, queue,
// duration, ranks, threads, GPU coin (+count), app, then the private seed.
type Generator struct {
	cfg Config
	rng *sim.RNG
}

// NewGenerator validates cfg and builds a generator for the given seed.
func NewGenerator(cfg Config, seed uint64) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg.withDefaults(), rng: sim.NewRNG(seed)}, nil
}

// Config returns the defaulted configuration the generator samples from.
func (g *Generator) Config() Config { return g.cfg }

// Generate samples cfg.Jobs specs in arrival order. Calling it again
// continues the stream with more jobs (fresh indices, same RNG).
func (g *Generator) Generate() []JobSpec {
	c := g.cfg
	specs := make([]JobSpec, 0, c.Jobs)
	var clock sim.Time
	for i := 0; i < c.Jobs; i++ {
		clock += sim.FromSeconds(g.rng.Exp(c.ArrivalMeanSec))
		spec := JobSpec{
			ID:      fmt.Sprintf("%s-j%03d", c.Name, i),
			Index:   i,
			Queue:   g.pickQueue(),
			Arrival: clock,
			Duration: sim.FromSeconds(c.DurationMinSec) +
				sim.FromSeconds(g.rng.Exp(c.DurationMeanSec)),
			Ranks:   1 + g.rng.Intn(c.MaxRanks),
			Threads: 1 + g.rng.Intn(c.MaxThreadsPerRank),
		}
		if c.CPUsPerRank > 0 {
			spec.CPUsPerRank = c.CPUsPerRank
		} else {
			spec.CPUsPerRank = spec.Threads
			if spec.CPUsPerRank > c.CPUsPerNode {
				spec.CPUsPerRank = c.CPUsPerNode
			}
		}
		// The GPU coin always burns one draw so the replay stream stays
		// aligned whether or not the job wins a device.
		if g.rng.Bool(c.GPUFrac) && c.GPUsPerNode > 0 {
			spec.GPUsPerRank = 1 + g.rng.Intn(c.GPUsPerRankMax)
		}
		spec.App = g.pickApp()
		spec.Seed = g.rng.Uint64()
		specs = append(specs, spec)
	}
	return specs
}

func (g *Generator) pickQueue() string {
	var total float64
	for _, q := range g.cfg.Queues {
		total += q.Weight
	}
	x := g.rng.Float64() * total
	for _, q := range g.cfg.Queues {
		if x < q.Weight {
			return q.Name
		}
		x -= q.Weight
	}
	return g.cfg.Queues[len(g.cfg.Queues)-1].Name
}

func (g *Generator) pickApp() string {
	var total float64
	for _, a := range g.cfg.AppMix {
		total += a.Weight
	}
	x := g.rng.Float64() * total
	for _, a := range g.cfg.AppMix {
		if x < a.Weight {
			return a.App
		}
		x -= a.Weight
	}
	return g.cfg.AppMix[len(g.cfg.AppMix)-1].App
}
