// Package scenario generates deterministic, seed-replayable multi-job
// fleets for the simulated testbed: a Generator samples job specs (arrival
// time, duration, queue, rank/thread counts, app mix, optional GPU demand)
// from a seeded RNG, and a time-aware Scheduler with configurable queue
// shares and preemption admits and evicts those jobs against shared
// simulated nodes — producing the oversubscription and affinity overlap
// *between* jobs that ZeroSum's node-sharing phenomenology (paper §3–4) is
// about, and that single-job workloads never exercise. The companion
// fairness sub-package turns the scheduler's allocation history into
// share-over-time, dominant-resource-share and starvation metrics plus an
// allocation-history CSV, directly modeled on KAI-Scheduler's time-aware
// fairness simulator. Everything derives from the seed: the same seed
// replays the identical schedule byte-for-byte.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// QueueConfig is one scheduling queue and its relative share weight.
type QueueConfig struct {
	Name string `json:"name"`
	// Weight is the queue's relative fair-share entitlement; fair share is
	// Weight over the sum of all queue weights.
	Weight float64 `json:"weight"`
}

// AppWeight weights one proxy application in the generated mix.
type AppWeight struct {
	// App names a proxy application profile: "miniqmc", "pic" or "stall".
	App string `json:"app"`
	// Weight is the relative draw probability.
	Weight float64 `json:"weight"`
}

// Supported app profile names.
const (
	AppMiniQMC = "miniqmc"
	AppPIC     = "pic"
	AppStall   = "stall"
)

// Config describes a whole scenario: the simulated cluster, the queues,
// and the job population the generator samples.
type Config struct {
	// Name labels the scenario in reports and CSV output.
	Name string `json:"name"`

	// Nodes is the cluster size; CPUsPerNode and GPUsPerNode the per-node
	// capacity the scheduler allocates against.
	Nodes       int `json:"nodes"`
	CPUsPerNode int `json:"cpus_per_node"`
	GPUsPerNode int `json:"gpus_per_node"`
	// Oversubscribe scales each node's allocatable CPU slots past its
	// physical CPUs (1.0 = no oversubscription). Slots beyond the physical
	// count share physical CPUs with another job — the affinity-overlap
	// contention the monitor observes as involuntary context switches.
	Oversubscribe float64 `json:"oversubscribe"`

	// Queues are the scheduling queues (at least one).
	Queues []QueueConfig `json:"queues"`

	// Jobs is how many jobs the generator samples.
	Jobs int `json:"jobs"`
	// ArrivalMeanSec is the mean of the exponential inter-arrival time.
	ArrivalMeanSec float64 `json:"arrival_mean_sec"`
	// DurationMinSec + an exponential draw with mean DurationMeanSec give
	// each job's occupancy duration.
	DurationMinSec  float64 `json:"duration_min_sec"`
	DurationMeanSec float64 `json:"duration_mean_sec"`
	// MaxRanks bounds the per-job rank count (uniform in [1, MaxRanks]).
	MaxRanks int `json:"max_ranks"`
	// MaxThreadsPerRank bounds each rank's worker thread count.
	MaxThreadsPerRank int `json:"max_threads_per_rank"`
	// CPUsPerRank is the CPU slots one rank occupies; 0 derives it from
	// the sampled thread count.
	CPUsPerRank int `json:"cpus_per_rank"`
	// GPUFrac is the fraction of jobs that demand GPUs; a GPU job asks for
	// a uniform draw in [1, GPUsPerRankMax] devices per rank.
	GPUFrac        float64 `json:"gpu_frac"`
	GPUsPerRankMax int     `json:"gpus_per_rank_max"`
	// AppMix weights the proxy applications; empty means all miniqmc.
	AppMix []AppWeight `json:"app_mix"`

	// Preempt enables fairness preemption: a queue far under its fair
	// share may evict the most recent admission of a queue far over its
	// share (the evicted job resumes later with its remaining duration).
	Preempt bool `json:"preempt"`
	// StarveSec counts a job starved when it waited longer than this for
	// its first admission (0 disables starvation accounting).
	StarveSec float64 `json:"starve_sec"`
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "scenario"
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.CPUsPerNode <= 0 {
		c.CPUsPerNode = 16
	}
	if c.GPUsPerNode < 0 {
		c.GPUsPerNode = 0
	}
	if c.Oversubscribe < 1 {
		c.Oversubscribe = 1
	}
	if len(c.Queues) == 0 {
		c.Queues = []QueueConfig{{Name: "default", Weight: 1}}
	}
	if c.Jobs <= 0 {
		c.Jobs = 16
	}
	if c.ArrivalMeanSec <= 0 {
		c.ArrivalMeanSec = 5
	}
	if c.DurationMeanSec <= 0 {
		c.DurationMeanSec = 30
	}
	if c.DurationMinSec <= 0 {
		c.DurationMinSec = 5
	}
	if c.MaxRanks <= 0 {
		c.MaxRanks = 4
	}
	if c.MaxThreadsPerRank <= 0 {
		c.MaxThreadsPerRank = 4
	}
	if c.GPUsPerRankMax <= 0 {
		c.GPUsPerRankMax = 1
	}
	if len(c.AppMix) == 0 {
		c.AppMix = []AppWeight{{App: AppMiniQMC, Weight: 1}}
	}
	return c
}

// Validate reports the first structural problem with the config.
func (c Config) Validate() error {
	c = c.withDefaults()
	seen := map[string]bool{}
	var wsum float64
	for _, q := range c.Queues {
		if q.Name == "" {
			return fmt.Errorf("scenario: queue with empty name")
		}
		if seen[q.Name] {
			return fmt.Errorf("scenario: duplicate queue %q", q.Name)
		}
		seen[q.Name] = true
		if q.Weight <= 0 {
			return fmt.Errorf("scenario: queue %q weight %v must be positive", q.Name, q.Weight)
		}
		wsum += q.Weight
	}
	if wsum <= 0 {
		return fmt.Errorf("scenario: queue weights sum to %v", wsum)
	}
	for _, a := range c.AppMix {
		switch a.App {
		case AppMiniQMC, AppPIC, AppStall:
		default:
			return fmt.Errorf("scenario: unknown app %q in mix (want %s, %s or %s)",
				a.App, AppMiniQMC, AppPIC, AppStall)
		}
		if a.Weight <= 0 {
			return fmt.Errorf("scenario: app %q weight %v must be positive", a.App, a.Weight)
		}
	}
	if c.CPUsPerRank > c.CPUsPerNode {
		return fmt.Errorf("scenario: cpus_per_rank %d exceeds cpus_per_node %d (a rank must fit on one node)",
			c.CPUsPerRank, c.CPUsPerNode)
	}
	if c.GPUsPerRankMax > c.GPUsPerNode && c.GPUFrac > 0 && c.GPUsPerNode > 0 {
		return fmt.Errorf("scenario: gpus_per_rank_max %d exceeds gpus_per_node %d",
			c.GPUsPerRankMax, c.GPUsPerNode)
	}
	return nil
}

// Preset returns a named built-in scenario configuration.
//
//   - "smoke": 6 small jobs on 2 nodes, 2 queues — fast enough to execute
//     end to end with real workload simulations (zsrun -scenario smoke).
//   - "contention": 24 jobs on 4 oversubscribed nodes with preemption —
//     queue shares collide, jobs overlap on CPUs.
//   - "fleet": 120 jobs over 16 nodes, 3 queues with preemption — the
//     traffic shape the multi-job soak and the aggregation tree chew on.
func Preset(name string) (Config, error) {
	switch name {
	case "smoke":
		return Config{
			Name: "smoke", Nodes: 2, CPUsPerNode: 4,
			Queues:         []QueueConfig{{Name: "prod", Weight: 3}, {Name: "batch", Weight: 1}},
			Jobs:           6,
			ArrivalMeanSec: 2, DurationMinSec: 2, DurationMeanSec: 4,
			MaxRanks: 2, MaxThreadsPerRank: 2,
			AppMix:    []AppWeight{{App: AppMiniQMC, Weight: 2}, {App: AppPIC, Weight: 1}, {App: AppStall, Weight: 1}},
			StarveSec: 30,
		}, nil
	case "contention":
		return Config{
			Name: "contention", Nodes: 4, CPUsPerNode: 8, GPUsPerNode: 2,
			Oversubscribe:  1.5,
			Queues:         []QueueConfig{{Name: "prod", Weight: 6}, {Name: "batch", Weight: 3}, {Name: "debug", Weight: 1}},
			Jobs:           24,
			ArrivalMeanSec: 4, DurationMinSec: 10, DurationMeanSec: 40,
			MaxRanks: 4, MaxThreadsPerRank: 4,
			GPUFrac: 0.25, GPUsPerRankMax: 1,
			AppMix:  []AppWeight{{App: AppMiniQMC, Weight: 3}, {App: AppPIC, Weight: 2}, {App: AppStall, Weight: 1}},
			Preempt: true, StarveSec: 60,
		}, nil
	case "fleet":
		return Config{
			Name: "fleet", Nodes: 16, CPUsPerNode: 32, GPUsPerNode: 4,
			Oversubscribe:  1.25,
			Queues:         []QueueConfig{{Name: "prod", Weight: 6}, {Name: "batch", Weight: 3}, {Name: "debug", Weight: 1}},
			Jobs:           120,
			ArrivalMeanSec: 3, DurationMinSec: 20, DurationMeanSec: 120,
			MaxRanks: 8, MaxThreadsPerRank: 8,
			GPUFrac: 0.3, GPUsPerRankMax: 2,
			AppMix:  []AppWeight{{App: AppMiniQMC, Weight: 3}, {App: AppPIC, Weight: 2}, {App: AppStall, Weight: 1}},
			Preempt: true, StarveSec: 120,
		}, nil
	default:
		return Config{}, fmt.Errorf("scenario: unknown preset %q (want smoke, contention or fleet)", name)
	}
}

// Load reads a scenario config: a built-in preset name, or a path to a
// JSON file with the Config field grammar (docs/scenarios.md).
func Load(nameOrPath string) (Config, error) {
	if cfg, err := Preset(nameOrPath); err == nil {
		return cfg, nil
	} else if _, statErr := os.Stat(nameOrPath); statErr != nil {
		return Config{}, fmt.Errorf("scenario: %q is neither a preset nor a readable file: %w", nameOrPath, err)
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		return Config{}, fmt.Errorf("scenario: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("scenario: parse %s: %w", nameOrPath, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("scenario: %s: %w", nameOrPath, err)
	}
	return cfg, nil
}
