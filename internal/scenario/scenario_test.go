package scenario_test

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zerosum/internal/scenario"
	"zerosum/internal/scenario/fairness"
	"zerosum/internal/sim"
	"zerosum/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

func presets(t *testing.T) []scenario.Config {
	t.Helper()
	var out []scenario.Config
	for _, name := range []string{"smoke", "contention", "fleet"} {
		cfg, err := scenario.Preset(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		out = append(out, cfg)
	}
	return out
}

func runScenario(t *testing.T, cfg scenario.Config, seed uint64) ([]scenario.JobSpec, *scenario.Result) {
	t.Helper()
	gen, err := scenario.NewGenerator(cfg, seed)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	specs := gen.Generate()
	sch, err := scenario.NewScheduler(cfg)
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	return specs, sch.Run(specs)
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, cfg := range presets(t) {
		a, _ := scenario.NewGenerator(cfg, 7)
		b, _ := scenario.NewGenerator(cfg, 7)
		sa, sb := a.Generate(), b.Generate()
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("%s: same seed produced different specs", cfg.Name)
		}
		c, _ := scenario.NewGenerator(cfg, 8)
		if reflect.DeepEqual(sa, c.Generate()) {
			t.Fatalf("%s: different seeds produced identical specs", cfg.Name)
		}
		for i, s := range sa {
			if i > 0 && s.Arrival < sa[i-1].Arrival {
				t.Fatalf("%s: job %d arrives before job %d", cfg.Name, i, i-1)
			}
			if s.Ranks < 1 || s.Threads < 1 || s.CPUsPerRank < 1 || s.Duration <= 0 {
				t.Fatalf("%s: job %d has degenerate shape: %+v", cfg.Name, i, s)
			}
			if s.CPUsPerRank > cfg.CPUsPerNode {
				t.Fatalf("%s: job %d rank wants %d CPUs on %d-CPU nodes", cfg.Name, i, s.CPUsPerRank, cfg.CPUsPerNode)
			}
		}
	}
}

// TestSchedulerInvariants checks the fairness math that docs/scenarios.md
// promises, across presets and seeds: shares sum to ≤1 at every instant,
// the per-event queue snapshots replay exactly from the event deltas,
// allocated CPU-time is conserved across preemptions, and every feasible
// job eventually finishes.
func TestSchedulerInvariants(t *testing.T) {
	for _, cfg := range presets(t) {
		for _, seed := range []uint64{1, 2, 42} {
			specs, res := runScenario(t, cfg, seed)
			if len(res.Events) == 0 {
				t.Fatalf("%s/%d: empty allocation history", cfg.Name, seed)
			}

			// Replay per-queue and total allocation from deltas; each
			// event's snapshot columns must match the replayed state.
			alloc := map[string]int{}
			for i, ev := range res.Events {
				switch ev.Kind {
				case scenario.EventAdmit:
					alloc[ev.Queue] += ev.CPUs
				case scenario.EventPreempt, scenario.EventFinish:
					alloc[ev.Queue] -= ev.CPUs
				}
				if alloc[ev.Queue] != ev.QueueCPUs {
					t.Fatalf("%s/%d event %d: queue %s snapshot %d != replayed %d",
						cfg.Name, seed, i, ev.Queue, ev.QueueCPUs, alloc[ev.Queue])
				}
				var total int
				for _, v := range alloc {
					if v < 0 {
						t.Fatalf("%s/%d event %d: negative allocation", cfg.Name, seed, i)
					}
					total += v
				}
				if total != ev.TotalCPUs {
					t.Fatalf("%s/%d event %d: total snapshot %d != replayed %d",
						cfg.Name, seed, i, ev.TotalCPUs, total)
				}
				if total > res.CapacityCPUs {
					t.Fatalf("%s/%d event %d: allocation %d exceeds capacity %d (shares sum past 1)",
						cfg.Name, seed, i, total, res.CapacityCPUs)
				}
				if ev.QueueShare > 1 || ev.QueueShare < 0 {
					t.Fatalf("%s/%d event %d: queue share %v out of [0,1]", cfg.Name, seed, i, ev.QueueShare)
				}
				if ev.OverlapCPUs < 0 || ev.OverlapCPUs > cfg.Nodes*cfg.CPUsPerNode {
					t.Fatalf("%s/%d event %d: overlap %d out of range", cfg.Name, seed, i, ev.OverlapCPUs)
				}
			}
			for q, v := range alloc {
				if v != 0 {
					t.Fatalf("%s/%d: queue %s still holds %d CPUs after the horizon", cfg.Name, seed, q, v)
				}
			}

			// Conservation across preemptions: every feasible job finishes
			// with exactly Duration × TotalCPUs of CPU-time.
			if len(res.Jobs) != len(specs) {
				t.Fatalf("%s/%d: %d outcomes for %d specs", cfg.Name, seed, len(res.Jobs), len(specs))
			}
			for _, o := range res.Jobs {
				if o.Rejected {
					continue
				}
				if !o.Done {
					t.Fatalf("%s/%d: feasible job %s never finished", cfg.Name, seed, o.Spec.ID)
				}
				want := o.Spec.Duration.Seconds() * float64(o.Spec.TotalCPUs())
				if diff := math.Abs(o.CPUSeconds - want); diff > 1e-6*want+1e-9 {
					t.Fatalf("%s/%d: job %s cpu-time %v != duration×cpus %v (preemption lost time)",
						cfg.Name, seed, o.Spec.ID, o.CPUSeconds, want)
				}
				if o.Admits != o.Preemptions+1 {
					t.Fatalf("%s/%d: job %s admits %d != preemptions %d + 1",
						cfg.Name, seed, o.Spec.ID, o.Admits, o.Preemptions)
				}
				if len(o.Placements) != o.Spec.Ranks {
					t.Fatalf("%s/%d: job %s has %d placements for %d ranks",
						cfg.Name, seed, o.Spec.ID, len(o.Placements), o.Spec.Ranks)
				}
			}

			// The integral of allocation over time equals the sum of
			// per-job CPU-seconds — the same conservation, measured from
			// the other side of the ledger.
			rep := fairness.Compute(res)
			if diff := math.Abs(rep.CPUTimeAllocatedSec - rep.CPUTimeUsedSec); diff > 1e-6*rep.CPUTimeUsedSec+1e-6 {
				t.Fatalf("%s/%d: allocated cpu-time %v != used %v",
					cfg.Name, seed, rep.CPUTimeAllocatedSec, rep.CPUTimeUsedSec)
			}
			if rep.JainIndex <= 0 || rep.JainIndex > 1+1e-9 {
				t.Fatalf("%s/%d: jain index %v out of (0,1]", cfg.Name, seed, rep.JainIndex)
			}
		}
	}
}

func allocCSV(t *testing.T, cfg scenario.Config, seed uint64) []byte {
	t.Helper()
	_, res := runScenario(t, cfg, seed)
	var buf bytes.Buffer
	if err := fairness.WriteAllocCSV(&buf, res); err != nil {
		t.Fatalf("write csv: %v", err)
	}
	return buf.Bytes()
}

// TestSeedReplayIdentical is the replay contract: the same seed yields
// byte-identical allocation-history CSV, a different seed does not.
func TestSeedReplayIdentical(t *testing.T) {
	for _, cfg := range presets(t) {
		a := allocCSV(t, cfg, 42)
		b := allocCSV(t, cfg, 42)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: same seed produced different CSV", cfg.Name)
		}
		if bytes.Equal(a, allocCSV(t, cfg, 43)) {
			t.Fatalf("%s: different seeds produced identical CSV", cfg.Name)
		}
	}
}

// TestAllocCSVGolden pins the contention preset's allocation history at
// seed 42. Regenerate with: go test ./internal/scenario -run Golden -update
func TestAllocCSVGolden(t *testing.T) {
	cfg, err := scenario.Preset("contention")
	if err != nil {
		t.Fatal(err)
	}
	got := allocCSV(t, cfg, 42)
	golden := filepath.Join("testdata", "alloc_contention_seed42.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("allocation CSV drifted from golden %s (rerun with -update if intended)\ngot %d bytes, want %d", golden, len(got), len(want))
	}
}

func TestLoadPresetAndJSON(t *testing.T) {
	if _, err := scenario.Load("smoke"); err != nil {
		t.Fatalf("load preset: %v", err)
	}
	if _, err := scenario.Load("no-such-preset"); err == nil {
		t.Fatal("unknown preset should fail")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "scen.json")
	body := `{"name":"custom","nodes":2,"cpus_per_node":4,"jobs":3,
		"queues":[{"name":"q","weight":1}],"arrival_mean_sec":1,
		"duration_min_sec":1,"duration_mean_sec":2,"max_ranks":2,"max_threads_per_rank":2}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := scenario.Load(path)
	if err != nil {
		t.Fatalf("load json: %v", err)
	}
	if cfg.Name != "custom" || cfg.Jobs != 3 {
		t.Fatalf("loaded config mangled: %+v", cfg)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"queues":[{"name":"q","weight":-1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Load(bad); err == nil {
		t.Fatal("invalid config should fail validation")
	}
}

// TestRejectInfeasible: demand that can never fit on an idle cluster is
// rejected at submit instead of pending forever.
func TestRejectInfeasible(t *testing.T) {
	cfg := scenario.Config{
		Name: "tiny", Nodes: 1, CPUsPerNode: 2, Jobs: 1,
		Queues: []scenario.QueueConfig{{Name: "q", Weight: 1}},
	}
	sch, err := scenario.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := []scenario.JobSpec{
		{ID: "fits", Queue: "q", Arrival: 0, Duration: sim.Second, Ranks: 1, Threads: 1, CPUsPerRank: 2},
		{ID: "toowide", Queue: "q", Arrival: 0, Duration: sim.Second, Ranks: 1, Threads: 1, CPUsPerRank: 3},
		{ID: "toomany", Queue: "q", Arrival: 0, Duration: sim.Second, Ranks: 9, Threads: 1, CPUsPerRank: 1},
	}
	res := sch.Run(specs)
	if o := res.Outcome("fits"); o == nil || !o.Done || o.Rejected {
		t.Fatalf("fits: %+v", o)
	}
	for _, id := range []string{"toowide", "toomany"} {
		if o := res.Outcome(id); o == nil || !o.Rejected || o.Done {
			t.Fatalf("%s should be rejected: %+v", id, o)
		}
	}
}

// TestPreemptionOccurs: the contention preset actually preempts — the
// invariants above would hold vacuously on a schedule with no evictions.
func TestPreemptionOccurs(t *testing.T) {
	cfg, err := scenario.Preset("contention")
	if err != nil {
		t.Fatal(err)
	}
	_, res := runScenario(t, cfg, 42)
	rep := fairness.Compute(res)
	if rep.TotalPreemptions == 0 {
		t.Fatal("contention preset at seed 42 should preempt at least once")
	}
	var overlapped bool
	for _, ev := range res.Events {
		if ev.OverlapCPUs > 0 {
			overlapped = true
			break
		}
	}
	if !overlapped {
		t.Fatal("oversubscribed preset should produce cross-job CPU overlap")
	}
}

// TestBuildJobExecutes runs one generated job of each app profile through
// the real workload simulator — the mapping zsrun -scenario relies on.
func TestBuildJobExecutes(t *testing.T) {
	seen := map[string]bool{}
	cfg, err := scenario.Preset("smoke")
	if err != nil {
		t.Fatal(err)
	}
	specs, res := runScenario(t, cfg, 3)
	for _, spec := range specs {
		if seen[spec.App] {
			continue
		}
		seen[spec.App] = true
		o := res.Outcome(spec.ID)
		if o == nil || o.Rejected {
			continue
		}
		jc, err := scenario.BuildJob(spec, len(o.Placements), scenario.ExecOptions{})
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		wr, err := workload.Run(jc)
		if err != nil {
			t.Fatalf("%s (%s): %v", spec.ID, spec.App, err)
		}
		if len(wr.Ranks) != spec.Ranks {
			t.Fatalf("%s: ran %d ranks, want %d", spec.ID, len(wr.Ranks), spec.Ranks)
		}
		if wr.WallSeconds <= 0 {
			t.Fatalf("%s: zero wall time", spec.ID)
		}
	}
	if len(seen) == 0 {
		t.Fatal("smoke preset generated no jobs")
	}
	if _, err := scenario.BuildJob(scenario.JobSpec{ID: "x", App: "nope", Ranks: 1, CPUsPerRank: 1}, 1, scenario.ExecOptions{}); err == nil {
		t.Fatal("unknown app should fail")
	}
}

func TestFairnessReportWrite(t *testing.T) {
	cfg, err := scenario.Preset("smoke")
	if err != nil {
		t.Fatal(err)
	}
	_, res := runScenario(t, cfg, 1)
	rep := fairness.Compute(res)
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("prod")) || !bytes.Contains(buf.Bytes(), []byte("jain")) {
		t.Fatalf("report missing expected columns:\n%s", buf.String())
	}
	for _, q := range []string{"prod", "batch"} {
		if pts := fairness.Series(res, q); len(pts) == 0 {
			t.Fatalf("empty share series for %s", q)
		}
	}
}
