package scenario

import (
	"fmt"
	"math"

	"zerosum/internal/sim"
)

// EventKind classifies one row of the allocation history.
type EventKind uint8

const (
	// EventSubmit records a job arriving in its queue.
	EventSubmit EventKind = iota
	// EventAdmit records a job (or a preempted remainder) starting to run.
	EventAdmit
	// EventPreempt records a running job evicted back to its queue.
	EventPreempt
	// EventFinish records a job completing its full duration.
	EventFinish
	// EventReject records a job that can never fit even on an idle
	// cluster; it is dropped rather than pending forever.
	EventReject
)

// String returns the CSV token for the event kind.
func (k EventKind) String() string {
	switch k {
	case EventSubmit:
		return "submit"
	case EventAdmit:
		return "admit"
	case EventPreempt:
		return "preempt"
	case EventFinish:
		return "finish"
	case EventReject:
		return "reject"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one allocation-history row: what happened, to whom, and the
// post-event allocation state of the job's queue and the whole cluster.
type Event struct {
	At    sim.Time
	Kind  EventKind
	Job   string
	Queue string
	// Ranks/CPUs/GPUs are the job's demand (CPUs and GPUs cluster-wide).
	Ranks, CPUs, GPUs int
	// QueueCPUs is the queue's allocated CPU slots after the event;
	// QueueShare is that over cluster slot capacity; FairShare the
	// queue's weight-derived entitlement.
	QueueCPUs  int
	QueueShare float64
	FairShare  float64
	// TotalCPUs is cluster-wide allocated slots after the event and
	// OverlapCPUs the number of physical CPUs carrying more than one
	// allocation (oversubscription pressure) after the event.
	TotalCPUs   int
	OverlapCPUs int
	// Pending is the number of jobs waiting in the queue after the event.
	Pending int
}

// Placement is the CPU grant one rank holds on one node. Under
// oversubscription distinct jobs' placements may name the same physical
// CPU — that collision is the affinity overlap the monitor measures.
type Placement struct {
	Node int
	CPUs []int
}

// JobOutcome is the per-job verdict after a scheduler run.
type JobOutcome struct {
	Spec        JobSpec
	Admits      int
	Preemptions int
	// WaitSec is arrival to first admission; Starved marks it exceeding
	// Config.StarveSec (or the job never running at all).
	WaitSec float64
	Starved bool
	// Rejected marks a job whose demand cannot fit even on an idle
	// cluster; it never ran.
	Rejected                 bool
	Done                     bool
	FirstAdmitSec, FinishSec float64
	// CPUSeconds is Σ over run slices of slice length × granted CPU
	// slots; conserved across preemptions (== Duration × TotalCPUs once
	// Done).
	CPUSeconds float64
	// Placements is the grant held at first admission, one per rank.
	Placements []Placement
}

// Result is a full scheduler run: the allocation history plus per-job
// outcomes, in spec order.
type Result struct {
	Cfg    Config
	Specs  []JobSpec
	Events []Event
	Jobs   []*JobOutcome
	// CapacityCPUs is the cluster slot capacity (nodes × per-node slots,
	// after oversubscription); CapacityGPUs likewise for devices.
	CapacityCPUs int
	CapacityGPUs int
	// HorizonSec is the time of the last event.
	HorizonSec float64
}

// Outcome returns the outcome for a job ID, or nil.
func (r *Result) Outcome(id string) *JobOutcome {
	for _, o := range r.Jobs {
		if o.Spec.ID == id {
			return o
		}
	}
	return nil
}

type queueState struct {
	cfg                QueueConfig
	fair               float64
	pending            []*runJob
	allocCPU, allocGPU int
}

// ratio is the queue's dominant share over its fair share — the scalar
// the scheduler minimizes when picking who runs next.
func (q *queueState) ratio(capCPU, capGPU int) float64 {
	return q.ratioWith(0, 0, capCPU, capGPU)
}

func (q *queueState) ratioWith(dCPU, dGPU, capCPU, capGPU int) float64 {
	share := float64(q.allocCPU+dCPU) / float64(capCPU)
	if capGPU > 0 {
		if g := float64(q.allocGPU+dGPU) / float64(capGPU); g > share {
			share = g
		}
	}
	return share / q.fair
}

type runJob struct {
	spec       JobSpec
	out        *JobOutcome
	queue      *queueState
	remaining  sim.Time
	admittedAt sim.Time
	admitOrder uint64
	completion sim.Handle
	placements []Placement
	running    bool
	// shielded marks a job admitted during the current schedule() pass;
	// it cannot be picked as a preemption victim until the pass ends,
	// which bounds preemption chains.
	shielded bool
}

type nodeState struct {
	occ             []int // per physical CPU: number of slot grants touching it
	slotCap         int
	used            int // Σ granted slots
	gpuUsed, gpuCap int
}

func (n *nodeState) freeSlots() int { return n.slotCap - n.used }

// Scheduler replays a job population against the simulated cluster on a
// discrete-event clock. It is single-threaded and fully deterministic:
// identical (Config, specs) produce an identical Result.
type Scheduler struct {
	cfg                    Config
	q                      *sim.Queue
	queues                 []*queueState
	byName                 map[string]*queueState
	nodes                  []*nodeState
	jobs                   []*runJob
	events                 []Event
	capCPU, capGPU         int
	overlap                int
	admitSeq               uint64
	maxRankCPU, maxRankGPU int // largest per-rank grant an idle node can hold
}

// NewScheduler builds a scheduler for cfg's cluster and queues.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:    cfg,
		q:      &sim.Queue{},
		byName: make(map[string]*queueState),
	}
	var wsum float64
	for _, qc := range cfg.Queues {
		wsum += qc.Weight
	}
	for _, qc := range cfg.Queues {
		qs := &queueState{cfg: qc, fair: qc.Weight / wsum}
		s.queues = append(s.queues, qs)
		s.byName[qc.Name] = qs
	}
	slotCap := int(math.Floor(float64(cfg.CPUsPerNode) * cfg.Oversubscribe))
	if slotCap < cfg.CPUsPerNode {
		slotCap = cfg.CPUsPerNode
	}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &nodeState{
			occ:     make([]int, cfg.CPUsPerNode),
			slotCap: slotCap,
			gpuCap:  cfg.GPUsPerNode,
		})
	}
	s.capCPU = cfg.Nodes * slotCap
	s.capGPU = cfg.Nodes * cfg.GPUsPerNode
	s.maxRankCPU = slotCap
	s.maxRankGPU = cfg.GPUsPerNode
	return s, nil
}

// Run replays specs (already in arrival order) to completion and returns
// the full allocation history. It drives Step until the event queue
// drains.
func (s *Scheduler) Run(specs []JobSpec) *Result {
	s.Load(specs)
	for s.Step() {
	}
	return s.Finish()
}

// Load enqueues the submit events for specs. Use with Step/Finish when
// the caller wants to interleave with other simulated activity (or to
// benchmark stepping); otherwise use Run.
func (s *Scheduler) Load(specs []JobSpec) {
	for i := range specs {
		spec := specs[i]
		qs := s.byName[spec.Queue]
		if qs == nil {
			// Unknown queue names route to the first queue rather than
			// silently vanishing from the history.
			qs = s.queues[0]
			spec.Queue = qs.cfg.Name
		}
		j := &runJob{
			spec:      spec,
			queue:     qs,
			remaining: spec.Duration,
			out:       &JobOutcome{Spec: spec},
		}
		s.jobs = append(s.jobs, j)
		s.q.At(spec.Arrival, func(now sim.Time) { s.submit(j, now) })
	}
}

// Step runs one scheduler event; false when the history is complete.
func (s *Scheduler) Step() bool { return s.q.Step() }

// Finish closes out the run and builds the Result. Jobs still pending at
// the horizon are counted starved.
func (s *Scheduler) Finish() *Result {
	res := &Result{
		Cfg:          s.cfg,
		Events:       s.events,
		CapacityCPUs: s.capCPU,
		CapacityGPUs: s.capGPU,
		HorizonSec:   s.q.Now().Seconds(),
	}
	for _, j := range s.jobs {
		res.Specs = append(res.Specs, j.spec)
		if !j.out.Done && !j.out.Rejected {
			j.out.Starved = true
			j.out.WaitSec = s.q.Now().Seconds() - j.spec.Arrival.Seconds()
		}
		res.Jobs = append(res.Jobs, j.out)
	}
	return res
}

func (s *Scheduler) submit(j *runJob, now sim.Time) {
	infeasible := j.spec.CPUsPerRank > s.maxRankCPU || j.spec.GPUsPerRank > s.maxRankGPU ||
		j.spec.Ranks > s.cfg.Nodes*(s.maxRankCPU/max(1, j.spec.CPUsPerRank))
	if !infeasible && j.spec.GPUsPerRank > 0 {
		infeasible = j.spec.Ranks > s.cfg.Nodes*(s.maxRankGPU/j.spec.GPUsPerRank)
	}
	if infeasible {
		j.out.Rejected = true
		s.record(now, EventReject, j)
		return
	}
	j.queue.pending = append(j.queue.pending, j)
	s.record(now, EventSubmit, j)
	s.schedule(now)
}

// schedule admits as many pending jobs as fit, repeatedly picking the
// queue furthest under its fair share. With preemption enabled, a
// blocked under-share queue may evict the newest admission of a queue
// that stays at or above the requester's post-admission ratio even
// after the eviction — that asymmetry keeps the pass from thrashing.
func (s *Scheduler) schedule(now sim.Time) {
	for {
		admitted := false
		for _, qs := range s.pickOrder() {
			if len(qs.pending) == 0 {
				continue
			}
			j := qs.pending[0]
			if s.tryPlace(j) {
				qs.pending = qs.pending[1:]
				s.admit(j, now)
				admitted = true
				break
			}
			if s.cfg.Preempt && s.preemptFor(j, now) {
				qs.pending = qs.pending[1:]
				s.admit(j, now)
				admitted = true
				break
			}
		}
		if !admitted {
			break
		}
	}
	for _, j := range s.jobs {
		j.shielded = false
	}
}

// pickOrder sorts queues by ascending ratio (ties by config order) so
// the most under-served queue gets first pick.
func (s *Scheduler) pickOrder() []*queueState {
	out := make([]*queueState, len(s.queues))
	copy(out, s.queues)
	for i := 1; i < len(out); i++ {
		for k := i; k > 0; k-- {
			if out[k].ratio(s.capCPU, s.capGPU) < out[k-1].ratio(s.capCPU, s.capGPU) {
				out[k], out[k-1] = out[k-1], out[k]
			} else {
				break
			}
		}
	}
	return out
}

// tryPlace finds a grant for every rank of j, preferring the node with
// the most free slots (ties to the lowest index) and within a node the
// least-occupied physical CPUs. Commits on success; no-op on failure.
func (s *Scheduler) tryPlace(j *runJob) bool {
	var placed []Placement
	for r := 0; r < j.spec.Ranks; r++ {
		best := -1
		for ni, n := range s.nodes {
			if n.freeSlots() < j.spec.CPUsPerRank || n.gpuCap-n.gpuUsed < j.spec.GPUsPerRank {
				continue
			}
			if best < 0 || n.freeSlots() > s.nodes[best].freeSlots() {
				best = ni
			}
		}
		if best < 0 {
			for _, p := range placed {
				s.free(p, j.spec.GPUsPerRank)
			}
			return false
		}
		placed = append(placed, s.grant(best, j.spec.CPUsPerRank, j.spec.GPUsPerRank))
	}
	j.placements = placed
	return true
}

func (s *Scheduler) grant(ni, cpus, gpus int) Placement {
	n := s.nodes[ni]
	p := Placement{Node: ni, CPUs: make([]int, 0, cpus)}
	for k := 0; k < cpus; k++ {
		// Least-occupied physical CPU, tie to the lowest index; a pick
		// that lands on occupancy ≥ 1 creates cross-job overlap.
		best := 0
		for c := 1; c < len(n.occ); c++ {
			if n.occ[c] < n.occ[best] {
				best = c
			}
		}
		if n.occ[best] == 1 {
			s.overlap++
		}
		n.occ[best]++
		p.CPUs = append(p.CPUs, best)
	}
	n.used += cpus
	n.gpuUsed += gpus
	return p
}

func (s *Scheduler) free(p Placement, gpus int) {
	n := s.nodes[p.Node]
	for _, c := range p.CPUs {
		n.occ[c]--
		if n.occ[c] == 1 {
			s.overlap--
		}
	}
	n.used -= len(p.CPUs)
	n.gpuUsed -= gpus
}

func (s *Scheduler) release(j *runJob) {
	for _, p := range j.placements {
		s.free(p, j.spec.GPUsPerRank)
	}
	j.placements = nil
	j.queue.allocCPU -= j.spec.TotalCPUs()
	j.queue.allocGPU -= j.spec.TotalGPUs()
	j.running = false
}

// preemptFor evicts victims until j fits, or undoes nothing and returns
// false. A victim must come from a queue that, even after losing it,
// keeps a ratio at or above what j's queue would reach by admitting j.
func (s *Scheduler) preemptFor(j *runJob, now sim.Time) bool {
	ratioAfter := j.queue.ratioWith(j.spec.TotalCPUs(), j.spec.TotalGPUs(), s.capCPU, s.capGPU)
	for !s.tryPlace(j) {
		victim := s.pickVictim(j, ratioAfter)
		if victim == nil {
			return false
		}
		s.preempt(victim, now)
	}
	return true
}

func (s *Scheduler) pickVictim(j *runJob, ratioAfter float64) *runJob {
	var victim *runJob
	for _, cand := range s.jobs {
		if !cand.running || cand.shielded || cand.queue == j.queue {
			continue
		}
		after := cand.queue.ratioWith(-cand.spec.TotalCPUs(), -cand.spec.TotalGPUs(), s.capCPU, s.capGPU)
		if after < ratioAfter {
			continue
		}
		// Newest admission of the most over-share queue goes first.
		if victim == nil ||
			cand.queue.ratio(s.capCPU, s.capGPU) > victim.queue.ratio(s.capCPU, s.capGPU) ||
			(cand.queue == victim.queue && cand.admitOrder > victim.admitOrder) {
			victim = cand
		}
	}
	return victim
}

func (s *Scheduler) admit(j *runJob, now sim.Time) {
	j.running = true
	j.shielded = true
	j.admittedAt = now
	s.admitSeq++
	j.admitOrder = s.admitSeq
	j.queue.allocCPU += j.spec.TotalCPUs()
	j.queue.allocGPU += j.spec.TotalGPUs()
	if j.out.Admits == 0 {
		j.out.WaitSec = (now - j.spec.Arrival).Seconds()
		j.out.FirstAdmitSec = now.Seconds()
		j.out.Starved = s.cfg.StarveSec > 0 && j.out.WaitSec > s.cfg.StarveSec
		j.out.Placements = j.placements
	}
	j.out.Admits++
	j.completion = s.q.At(now+j.remaining, func(at sim.Time) { s.finish(j, at) })
	s.record(now, EventAdmit, j)
}

func (s *Scheduler) preempt(j *runJob, now sim.Time) {
	j.completion.Cancel()
	ran := now - j.admittedAt
	j.remaining -= ran
	if j.remaining < 0 {
		j.remaining = 0
	}
	j.out.CPUSeconds += ran.Seconds() * float64(j.spec.TotalCPUs())
	j.out.Preemptions++
	s.release(j)
	// Evicted jobs go to the front of their queue so the remainder is
	// rescheduled before anything newer.
	j.queue.pending = append([]*runJob{j}, j.queue.pending...)
	s.record(now, EventPreempt, j)
}

func (s *Scheduler) finish(j *runJob, now sim.Time) {
	ran := now - j.admittedAt
	j.out.CPUSeconds += ran.Seconds() * float64(j.spec.TotalCPUs())
	j.out.Done = true
	j.out.FinishSec = now.Seconds()
	s.release(j)
	s.record(now, EventFinish, j)
	s.schedule(now)
}

func (s *Scheduler) record(now sim.Time, kind EventKind, j *runJob) {
	var total int
	for _, qs := range s.queues {
		total += qs.allocCPU
	}
	s.events = append(s.events, Event{
		At:          now,
		Kind:        kind,
		Job:         j.spec.ID,
		Queue:       j.queue.cfg.Name,
		Ranks:       j.spec.Ranks,
		CPUs:        j.spec.TotalCPUs(),
		GPUs:        j.spec.TotalGPUs(),
		QueueCPUs:   j.queue.allocCPU,
		QueueShare:  float64(j.queue.allocCPU) / float64(s.capCPU),
		FairShare:   j.queue.fair,
		TotalCPUs:   total,
		OverlapCPUs: s.overlap,
		Pending:     len(j.queue.pending),
	})
}
