package sched

import (
	"testing"
	"testing/quick"

	"zerosum/internal/proc"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

// TestWorkConservation: total CPU time accrued across tasks equals total
// busy time accrued across CPUs, and neither exceeds wall time x CPUs.
func TestWorkConservation(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(7), Params{Timeslice: 3 * sim.Millisecond})
	p := k.NewProcess("app", topology.RangeCPUSet(0, 3))
	var tasks []*Task
	for i := 0; i < 6; i++ {
		w := sim.Time(i+1) * 100 * sim.Millisecond
		tasks = append(tasks, k.NewTask(p, "w", Seq(
			Compute{Work: w, SysFrac: 0.1},
			Sleep{D: 50 * sim.Millisecond},
			Compute{Work: w / 2},
		)))
	}
	run(t, k)
	var taskTotal sim.Time
	for _, task := range tasks {
		taskTotal += task.UTime + task.STime
	}
	var cpuTotal sim.Time
	for _, idx := range k.cpuOrder {
		user, sys, _ := k.cpuTimes(idx)
		cpuTotal += user + sys
	}
	if taskTotal != cpuTotal {
		t.Fatalf("task CPU %v != cpu busy %v", taskTotal, cpuTotal)
	}
	if maxBusy := k.Now() * sim.Time(m.NumPUs()); cpuTotal > maxBusy {
		t.Fatalf("busy %v exceeds wall x cpus %v", cpuTotal, maxBusy)
	}
	// Compute-only portion: each task must accrue at least its nominal
	// work (stretching under contention is allowed, shrinking is not).
	for i, task := range tasks {
		nominal := sim.Time(i+1)*100*sim.Millisecond + sim.Time(i+1)*50*sim.Millisecond
		if got := task.UTime + task.STime; got < nominal-2*sim.Millisecond {
			t.Fatalf("task %d accrued %v < nominal %v", i, got, nominal)
		}
	}
}

// TestQuickAffinityAlwaysRespected: tasks with random single-CPU pins never
// execute elsewhere.
func TestQuickAffinityAlwaysRespected(t *testing.T) {
	f := func(pins []uint8, seed uint16) bool {
		if len(pins) == 0 {
			return true
		}
		if len(pins) > 12 {
			pins = pins[:12]
		}
		m := topology.Laptop4Core()
		var q sim.Queue
		k := NewKernel(m, &q, sim.NewRNG(uint64(seed)+1), Params{
			Timeslice:         2 * sim.Millisecond,
			WakeAffinityNoise: 0.2,
		})
		p := k.NewProcess("app", m.AllPUSet())
		var tasks []*Task
		var want []int
		for _, pin := range pins {
			cpu := int(pin) % 8
			want = append(want, cpu)
			tasks = append(tasks, k.NewTask(p, "w", Seq(
				Compute{Work: 20 * sim.Millisecond},
				Sleep{D: 5 * sim.Millisecond},
				Compute{Work: 10 * sim.Millisecond},
			), WithAffinity(topology.NewCPUSet(cpu))))
		}
		if err := k.Run(50_000_000); err != nil {
			return false
		}
		for i, task := range tasks {
			if task.LastCPU != want[i] {
				return false
			}
			if task.Migrations != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickContextSwitchAccounting: ctxtTotal >= sum of per-task switches
// (exits add to the global count).
func TestQuickContextSwitchAccounting(t *testing.T) {
	f := func(nTasks uint8, seed uint16) bool {
		n := int(nTasks)%6 + 1
		m := topology.Laptop4Core()
		var q sim.Queue
		k := NewKernel(m, &q, sim.NewRNG(uint64(seed)+1), Params{Timeslice: sim.Millisecond})
		p := k.NewProcess("app", topology.NewCPUSet(0, 1))
		var tasks []*Task
		for i := 0; i < n; i++ {
			tasks = append(tasks, k.NewTask(p, "w", Seq(
				Compute{Work: 30 * sim.Millisecond},
				Sleep{D: sim.Millisecond},
				Compute{Work: 10 * sim.Millisecond},
			)))
		}
		if err := k.Run(50_000_000); err != nil {
			return false
		}
		var perTask uint64
		for _, task := range tasks {
			perTask += task.VCtx + task.NVCtx
		}
		return k.ctxtTotal >= perTask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestStateTransitionsVisible: /proc-visible states follow the lifecycle.
func TestStateTransitionsVisible(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	task := k.NewTask(p, "w", Seq(
		Compute{Work: 10 * sim.Millisecond},
		Sleep{D: 100 * sim.Millisecond},
		Compute{Work: 10 * sim.Millisecond},
	))
	if task.State() != proc.StateRunning {
		t.Fatalf("new runnable task state = %c", byte(task.State()))
	}
	k.RunUntil(50 * sim.Millisecond)
	if task.State() != proc.StateSleeping {
		t.Fatalf("sleeping task state = %c", byte(task.State()))
	}
	if task.OnCPU() != -1 {
		t.Fatal("sleeping task should not be on a CPU")
	}
	run(t, k)
	if task.State() != proc.StateZombie {
		t.Fatalf("exited task state = %c", byte(task.State()))
	}
}

// TestBandwidthWorkConservingAcrossBlocks: when one memory-bound task
// blocks, the freed bandwidth speeds up the survivors immediately (the
// recalcThrottle path), so the aggregate finishes in the fluid-model time.
func TestBandwidthWorkConservingAcrossBlocks(t *testing.T) {
	m := topology.MustBuild(topology.Spec{
		Name: "bw", Packages: 1, NUMAPerPackage: 1, L3PerNUMA: 1,
		CoresPerL3: 4, ThreadsPerCore: 1, MemBytes: 1 << 30,
		L3Bytes: 1 << 20, L2Bytes: 1 << 18, L1Bytes: 1 << 15,
		NUMABandwidth: 20e9,
	})
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{})
	p := k.NewProcess("app", topology.RangeCPUSet(0, 3))
	// Task A: 0.5s work then done. Tasks B,C,D: 1s work each.
	// All demand 10 GB/s; cap 20 GB/s.
	mk := func(w sim.Time, cpu int) *Task {
		return k.NewTask(p, "w", Seq(Compute{Work: w, BytesPerSec: 10e9}),
			WithAffinity(topology.NewCPUSet(cpu)))
	}
	mk(500*sim.Millisecond, 0)
	mk(1*sim.Second, 1)
	mk(1*sim.Second, 2)
	mk(1*sim.Second, 3)
	run(t, k)
	// Fluid model: total demand-normalized work = 3.5 task-seconds at
	// 10 GB/s = 35 GB; capacity 20 GB/s -> >= 1.75s. Phase analysis:
	// 4 tasks at cap (x0.5 speed) until A finishes at t=1.0; then 3 tasks
	// (still capped at 2/3 speed) need remaining 0.5s work each:
	// t = 1.0 + 0.5/(2/3) = 1.75s.
	if got := k.Now().Seconds(); got < 1.70 || got > 1.85 {
		t.Fatalf("wall = %v, want ~1.75s (work-conserving bandwidth)", got)
	}
}

// TestThrottleFloor: absurd oversubscription of bandwidth still progresses.
func TestThrottleFloor(t *testing.T) {
	m := topology.MustBuild(topology.Spec{
		Name: "bw", Packages: 1, NUMAPerPackage: 1, L3PerNUMA: 1,
		CoresPerL3: 2, ThreadsPerCore: 1, MemBytes: 1 << 30,
		L3Bytes: 1 << 20, L2Bytes: 1 << 18, L1Bytes: 1 << 15,
		NUMABandwidth: 1, // 1 byte/sec: pathological
	})
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{ThrottleFloor: 0.1})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	k.NewTask(p, "w", Seq(Compute{Work: 100 * sim.Millisecond, BytesPerSec: 1e9}))
	run(t, k)
	// Floor 0.1: at most ~1s wall for 100ms of work.
	if got := k.Now().Seconds(); got > 1.1 {
		t.Fatalf("wall = %v, floor not applied", got)
	}
}

// TestPreemptRefillChargesVictimAndSibling: the Figure 8 contention
// mechanism adds work to the displaced thread and its SMT sibling.
func TestPreemptRefillChargesVictimAndSibling(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{
		PreemptRefill:     10 * sim.Millisecond,
		SiblingRefillFrac: 0.5,
	})
	p := k.NewProcess("app", m.AllPUSet())
	victim := k.NewTask(p, "victim", Seq(Compute{Work: 500 * sim.Millisecond}),
		WithAffinity(topology.NewCPUSet(0)))
	sibling := k.NewTask(p, "sibling", Seq(Compute{Work: 500 * sim.Millisecond}),
		WithAffinity(topology.NewCPUSet(4))) // SMT pair of CPU 0 on the laptop
	bystander := k.NewTask(p, "bystander", Seq(Compute{Work: 500 * sim.Millisecond}),
		WithAffinity(topology.NewCPUSet(1)))
	// A preempting monitor wakes 5 times on CPU 0.
	i := 0
	k.NewTask(p, "mon", BehaviorFunc(func(t *Task, now sim.Time) Action {
		i++
		if i > 10 {
			return nil
		}
		if i%2 == 1 {
			return Sleep{D: 50 * sim.Millisecond}
		}
		return Compute{Work: sim.Millisecond}
	}), WithAffinity(topology.NewCPUSet(0)), WithWakePreempt())
	run(t, k)
	// Victim: 500ms + 5 x 10ms refill (SMT-shared, so even more wall).
	// Compare accrued CPU: victim >= 550ms-ish, sibling >= 525ms,
	// bystander ~500ms (SMT-free core... CPU 1's sibling is CPU 5, idle).
	v := (victim.UTime + victim.STime).Seconds()
	s := (sibling.UTime + sibling.STime).Seconds()
	b := (bystander.UTime + bystander.STime).Seconds()
	if v < 0.545 {
		t.Fatalf("victim cpu = %v, want >= 0.545 (refill charged)", v)
	}
	if s < 0.52 {
		t.Fatalf("sibling cpu = %v, want >= 0.52 (half refill)", s)
	}
	if b > 0.51 {
		t.Fatalf("bystander cpu = %v, want ~0.5 (unaffected)", b)
	}
}
