package sched

import (
	"fmt"
	"time"

	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

// Params tunes the simulated scheduler. Zero values select defaults.
type Params struct {
	// Quantum is the accounting tick; completions and preemptions are
	// detected at this granularity. Default 1ms.
	Quantum sim.Time
	// Timeslice is how long a task may run while others wait on the same
	// CPU before a non-voluntary context switch. Default 10ms. The
	// oversubscribed Frontier experiments use sub-millisecond slices,
	// matching CFS's scaled sched_min_granularity under heavy load.
	Timeslice sim.Time
	// SMTFactor is each hardware thread's relative speed when both HWTs
	// of a core are busy. Default 0.62.
	SMTFactor float64
	// ThrottleFloor bounds memory-bandwidth throttling from below so a
	// saturated domain still makes progress. Default 0.02.
	ThrottleFloor float64
	// PreemptRefill charges a wake-preempted victim extra full-speed work
	// modelling cache refill after the preemptor polluted its L1/L2: on a
	// bandwidth-saturated domain this extra work costs real memory
	// bandwidth, which is how a tiny monitor thread can perturb a fully
	// occupied core (the paper's 2-threads-per-core overhead case).
	// Default 0.
	PreemptRefill sim.Time
	// SiblingRefillFrac extends PreemptRefill to the task on the victim's
	// SMT sibling (shared L1/L2). Default 0.5 when PreemptRefill is set.
	SiblingRefillFrac float64
	// WakeAffinityNoise is the probability that a waking task lands on a
	// different idle allowed CPU than its last one, modelling Linux's
	// select_idle_sibling imperfection. It is what makes unbound threads
	// "typically migrate at least once" (the paper's Table 2) while
	// pinned threads cannot. Default 0 (perfectly affine wakeups).
	WakeAffinityNoise float64
	// BaseTID seeds PID/TID allocation. Default 18300 (the neighbourhood
	// of the paper's tables, purely cosmetic).
	BaseTID int
	// BaselineMemKB is memory used by the OS and system daemons,
	// reflected in /proc/meminfo. Default 6 GB.
	BaselineMemKB uint64
}

func (p Params) withDefaults() Params {
	if p.Quantum <= 0 {
		p.Quantum = sim.Millisecond
	}
	if p.Timeslice <= 0 {
		p.Timeslice = 10 * sim.Millisecond
	}
	if p.Timeslice < p.Quantum {
		p.Timeslice = p.Quantum
	}
	if p.SMTFactor <= 0 || p.SMTFactor > 1 {
		p.SMTFactor = 0.62
	}
	if p.ThrottleFloor <= 0 {
		p.ThrottleFloor = 0.02
	}
	if p.PreemptRefill > 0 && p.SiblingRefillFrac == 0 {
		p.SiblingRefillFrac = 0.5
	}
	if p.BaseTID <= 0 {
		p.BaseTID = 18300
	}
	if p.BaselineMemKB == 0 {
		p.BaselineMemKB = 6 << 20 // 6 GB
	}
	return p
}

// cpuState is one hardware thread's scheduler state.
type cpuState struct {
	os             int
	domain         int   // NUMA OS index
	siblings       []int // other PUs of the same core
	current        *Task
	queue          []*Task // FIFO ready queue
	busyUser       sim.Time
	busySys        sim.Time
	accountedUntil sim.Time
}

// Kernel simulates the OS scheduler of one compute node.
type Kernel struct {
	Machine *topology.Machine
	Q       *sim.Queue
	RNG     *sim.RNG
	P       Params

	cpus      map[int]*cpuState
	cpuOrder  []int
	procs     []*Process
	procByPID map[int]*Process
	nextID    int

	nActive       int // tasks running or ready
	tickScheduled bool
	prevTick      sim.Time
	throttle      map[int]float64 // per-NUMA-domain rate multiplier this tick
	scratch       []*cpuState     // tick-local active-CPU buffer
	scratch2      []*cpuState     // recalcThrottle buffer (tick may be mid-pass)

	ctxtTotal uint64
	forks     uint64
	bootWall  time.Time
	trace     *Trace
}

// NewKernel builds a kernel over the machine's usable hardware threads.
// All PUs exist (including reserved cores: system tasks could run there),
// and the same event queue can be shared across kernels for multi-node
// simulations.
func NewKernel(m *topology.Machine, q *sim.Queue, rng *sim.RNG, params Params) *Kernel {
	k := &Kernel{
		Machine:   m,
		Q:         q,
		RNG:       rng,
		P:         params.withDefaults(),
		cpus:      make(map[int]*cpuState),
		procByPID: make(map[int]*Process),
		throttle:  make(map[int]float64),
		bootWall:  time.Date(2023, 11, 12, 0, 0, 0, 0, time.UTC), // HUST-23 day
	}
	k.nextID = k.P.BaseTID
	for _, pu := range m.PUs() {
		cs := &cpuState{os: pu.OSIndex, domain: pu.Core.Group.NUMA.OSIndex}
		for _, sib := range pu.Core.PUs {
			if sib.OSIndex != pu.OSIndex {
				cs.siblings = append(cs.siblings, sib.OSIndex)
			}
		}
		k.cpus[pu.OSIndex] = cs
		k.cpuOrder = append(k.cpuOrder, pu.OSIndex)
	}
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() sim.Time { return k.Q.Now() }

// WallClock maps simulated time onto a wall-clock instant so monitors can
// stamp samples with time.Time values.
func (k *Kernel) WallClock() time.Time {
	return k.bootWall.Add(k.Now().Duration())
}

// Hostname returns the node's hostname.
func (k *Kernel) Hostname() string { return k.Machine.Hostname }

// allocID hands out PID/TID values with small gaps, like a real system.
func (k *Kernel) allocID() int {
	id := k.nextID
	k.nextID += 1 + k.RNG.Intn(4)
	return id
}

// NewProcess creates a process with the given command name and cpuset.
// Its first NewTask becomes the main thread (TID == PID).
func (k *Kernel) NewProcess(comm string, affinity topology.CPUSet) *Process {
	if affinity.Empty() {
		affinity = k.Machine.AllPUSet()
	}
	p := &Process{
		PID:       k.allocID(),
		Comm:      comm,
		Affinity:  affinity.Clone(),
		StartTime: k.Now(),
		kernel:    k,
	}
	p.SetRSS(64 << 10)     // 64 MB default footprint
	p.SetVmSize(512 << 10) // 512 MB
	k.procs = append(k.procs, p)
	k.procByPID[p.PID] = p
	k.forks++
	return p
}

// TaskOption configures a new task.
type TaskOption func(*Task)

// WithKind sets the thread classification.
func WithKind(kind ThreadKind) TaskOption { return func(t *Task) { t.Kind = kind } }

// WithAffinity pins the task to the given cpuset instead of inheriting the
// process cpuset.
func WithAffinity(set topology.CPUSet) TaskOption {
	return func(t *Task) { t.Affinity = set.Clone() }
}

// WithWakePreempt marks the task's wakeups as preempting (interactive).
func WithWakePreempt() TaskOption { return func(t *Task) { t.WakePreempts = true } }

// WithNice sets the nice value (recorded in /proc; informational).
func WithNice(n int) TaskOption { return func(t *Task) { t.Nice = n } }

// NewTask creates an LWP in process p driven by behavior b and makes it
// runnable immediately.
func (k *Kernel) NewTask(p *Process, comm string, b Behavior, opts ...TaskOption) *Task {
	t := &Task{
		Comm:      comm,
		Proc:      p,
		Affinity:  p.Affinity.Clone(),
		behavior:  b,
		LastCPU:   -1,
		cpu:       -1,
		StartTime: k.Now(),
		state:     stateNew,
	}
	if len(p.Tasks) == 0 {
		t.TID = p.PID
		t.Kind = KindMain
	} else {
		t.TID = k.allocID()
		t.Kind = KindOther
	}
	for _, o := range opts {
		o(t)
	}
	if t.Affinity.Empty() {
		t.Affinity = p.Affinity.Clone()
	}
	p.Tasks = append(p.Tasks, t)
	k.forks++
	k.advance(t, k.Now())
	return t
}

// NewBarrier creates a reusable barrier for n participants.
func (k *Kernel) NewBarrier(n int) *Barrier { return &Barrier{k: k, N: n} }

// NewGate creates a wait/signal gate.
func (k *Kernel) NewGate() *Gate { return &Gate{k: k} }

// Signal releases up to n waiters; surplus signals are retained as credits
// consumed by future waits.
func (g *Gate) Signal(n int) {
	now := g.k.Now()
	for n > 0 && len(g.waiting) > 0 {
		t := g.waiting[0]
		g.waiting = g.waiting[1:]
		g.k.resume(t, now)
		n--
	}
	g.credits += n
}

// Broadcast releases every current waiter.
func (g *Gate) Broadcast() { g.Signal(len(g.waiting)) }

// arrive records t at the barrier; it returns true when t is the last
// arriver (which proceeds without blocking) after waking all others.
func (b *Barrier) arrive(t *Task, now sim.Time) bool {
	if len(b.waiting)+1 >= b.N {
		ws := b.waiting
		b.waiting = nil
		for _, w := range ws {
			b.k.resume(w, now)
		}
		return true
	}
	b.waiting = append(b.waiting, t)
	return false
}

// advance pulls actions from the task's behavior until one of them leaves
// the task running, blocked or exited.
func (k *Kernel) advance(t *Task, now sim.Time) {
	for {
		var a Action
		if t.behavior != nil {
			a = t.behavior.Next(t, now)
		}
		if a == nil {
			a = Exit{}
		}
		for {
			d, ok := a.(Deferred)
			if !ok {
				break
			}
			if d.Fn == nil {
				a = Exit{}
				break
			}
			a = d.Fn()
			if a == nil {
				a = Exit{}
			}
		}
		switch act := a.(type) {
		case Compute:
			if act.Work <= 0 {
				continue
			}
			t.cur = act
			t.workLeft = act.Work
			if t.state != stateRunning {
				k.placeRunnable(t, now)
			}
			return
		case Call:
			if act.Fn != nil {
				act.Fn(now)
			}
		case Sleep:
			if act.D <= 0 {
				continue
			}
			k.blockTask(t, now)
			tt := t
			// `now` is the logical completion time of the previous action,
			// which may precede the tick that detected it; schedule the
			// wake from the logical time so sleep cycles do not stretch by
			// the accounting quantum.
			wake := now + act.D
			if qnow := k.Q.Now(); wake < qnow {
				wake = qnow
			}
			t.wakeHandle = k.Q.At(wake, func(nw sim.Time) { k.resume(tt, nw) })
			return
		case WaitBarrier:
			if act.B.arrive(t, now) {
				continue
			}
			k.blockTask(t, now)
			return
		case WaitGate:
			if act.G.credits > 0 {
				act.G.credits--
				continue
			}
			act.G.waiting = append(act.G.waiting, t)
			k.blockTask(t, now)
			return
		case Exit:
			k.exitTask(t, now)
			return
		default:
			panic(fmt.Sprintf("sched: unknown action %T", a))
		}
	}
}

// resume continues a blocked task whose waiting action has completed: it
// fetches the next action, which (for Compute) re-places the task on a CPU.
func (k *Kernel) resume(t *Task, now sim.Time) {
	if t.state != stateBlocked {
		return
	}
	k.advance(t, now)
}

// blockTask removes the task from execution (a voluntary context switch).
func (k *Kernel) blockTask(t *Task, now sim.Time) {
	switch t.state {
	case stateRunning:
		t.VCtx++
		k.ctxtTotal++
		k.releaseCPU(t, now)
		k.nActive--
	case stateReady:
		t.VCtx++
		k.ctxtTotal++
		k.dequeue(t)
		k.nActive--
	case stateNew:
		// never ran; no context switch
	case stateBlocked:
		return
	}
	t.state = stateBlocked
	k.recalcThrottle()
}

// exitTask ends the task and, when it is the last live task, the process.
func (k *Kernel) exitTask(t *Task, now sim.Time) {
	switch t.state {
	case stateRunning:
		k.ctxtTotal++ // the exit path switches to the next task or idle
		k.releaseCPU(t, now)
		k.nActive--
	case stateReady:
		k.dequeue(t)
		k.nActive--
	}
	t.state = stateExited
	t.Exited = true
	t.ExitTime = now
	live := 0
	for _, tt := range t.Proc.Tasks {
		if !tt.Exited {
			live++
		}
	}
	if live == 0 {
		t.Proc.Exited = true
	}
	k.recalcThrottle()
}

// releaseCPU detaches a running task from its CPU and immediately starts
// the next queued task there, if any.
func (k *Kernel) releaseCPU(t *Task, now sim.Time) {
	c := k.cpus[t.cpu]
	if c == nil || c.current != t {
		return
	}
	if k.trace != nil {
		k.trace.onStop(c.os, now)
	}
	c.current = nil
	t.cpu = -1
	if len(c.queue) > 0 {
		next := c.queue[0]
		c.queue = c.queue[1:]
		k.startOn(next, c, now)
	}
}

// dequeue removes a ready task from whatever queue holds it.
func (k *Kernel) dequeue(t *Task) {
	c := k.cpus[t.cpu]
	if c == nil {
		return
	}
	for i, q := range c.queue {
		if q == t {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	t.cpu = -1
}

// placeRunnable makes a blocked or new task runnable and finds it a CPU:
// last CPU if idle, else the lowest-index idle allowed CPU, else (for
// preempting wakers) a victim's CPU, else the allowed queue with the least
// load.
func (k *Kernel) placeRunnable(t *Task, now sim.Time) {
	if t.state == stateRunning || t.state == stateReady {
		return
	}
	if t.state == stateExited {
		return
	}
	t.wakeHandle.Cancel()
	k.nActive++

	affine := true
	if k.P.WakeAffinityNoise > 0 && k.RNG.Float64() < k.P.WakeAffinityNoise {
		affine = false
	}
	if affine && t.LastCPU >= 0 && t.Affinity.Contains(t.LastCPU) {
		if c := k.cpus[t.LastCPU]; c != nil && c.current == nil && len(c.queue) == 0 {
			k.startOn(t, c, now)
			k.ensureTick(now)
			k.recalcThrottle()
			return
		}
	}
	var idle *cpuState
	for _, pu := range t.Affinity.List() {
		c := k.cpus[pu]
		if c != nil && c.current == nil && len(c.queue) == 0 {
			// A non-affine wakeup skips the home CPU when an alternative
			// exists.
			if !affine && pu == t.LastCPU && idle == nil {
				idle = c // fallback if nothing else is idle
				continue
			}
			idle = c
			break
		}
	}
	if idle != nil {
		k.startOn(t, idle, now)
		k.ensureTick(now)
		k.recalcThrottle()
		return
	}
	if t.WakePreempts {
		victimCPU := k.pickVictim(t)
		if victimCPU != nil {
			k.preemptFor(t, victimCPU, now)
			k.ensureTick(now)
			k.recalcThrottle()
			return
		}
	}
	// Enqueue on the least-loaded allowed CPU.
	var best *cpuState
	bestLoad := int(^uint(0) >> 1)
	for _, pu := range t.Affinity.List() {
		c := k.cpus[pu]
		if c == nil {
			continue
		}
		load := len(c.queue)
		if c.current != nil {
			load++
		}
		if load < bestLoad {
			bestLoad = load
			best = c
		}
	}
	if best == nil {
		panic(fmt.Sprintf("sched: %v has no allowed CPUs (affinity %s)", t, t.Affinity))
	}
	t.state = stateReady
	t.readySince = now
	t.cpu = best.os
	best.queue = append(best.queue, t)
	k.ensureTick(now)
}

// pickVictim chooses the CPU whose running task a preempting waker will
// displace: the waker's last CPU when allowed, else the lowest-index
// allowed CPU running a non-preempting task.
func (k *Kernel) pickVictim(t *Task) *cpuState {
	if t.LastCPU >= 0 && t.Affinity.Contains(t.LastCPU) {
		if c := k.cpus[t.LastCPU]; c != nil && c.current != nil && !c.current.WakePreempts {
			return c
		}
	}
	for _, pu := range t.Affinity.List() {
		c := k.cpus[pu]
		if c != nil && c.current != nil && !c.current.WakePreempts {
			return c
		}
	}
	return nil
}

// preemptFor displaces the victim on c in favour of waker t (a
// non-voluntary context switch for the victim, charged mid-quantum).
func (k *Kernel) preemptFor(t *Task, c *cpuState, now sim.Time) {
	k.accountCPU(c, now)
	victim := c.current
	if victim == nil { // victim finished during accounting; just start.
		k.startOn(t, c, now)
		return
	}
	victim.NVCtx++
	k.ctxtTotal++
	if k.P.PreemptRefill > 0 {
		if _, ok := victim.cur.(Compute); ok {
			victim.workLeft += k.P.PreemptRefill
		}
		for _, sib := range c.siblings {
			sc := k.cpus[sib]
			if sc == nil || sc.current == nil {
				continue
			}
			k.accountCPU(sc, now) // may retire the sibling's action
			if st := sc.current; st != nil {
				if _, ok := st.cur.(Compute); ok {
					st.workLeft += sim.Time(float64(k.P.PreemptRefill) * k.P.SiblingRefillFrac)
				}
			}
		}
	}
	victim.state = stateReady
	victim.readySince = now
	victim.cpu = c.os
	c.queue = append(c.queue, victim)
	c.current = nil
	k.startOn(t, c, now)
}

// startOn begins running t on c at time now.
func (k *Kernel) startOn(t *Task, c *cpuState, now sim.Time) {
	if c.current != nil {
		panic(fmt.Sprintf("sched: cpu %d already running %v", c.os, c.current))
	}
	if t.LastCPU >= 0 && t.LastCPU != c.os {
		t.Migrations++
	}
	t.LastCPU = c.os
	t.cpu = c.os
	t.state = stateRunning
	t.sliceUsed = 0
	c.current = t
	c.accountedUntil = now
	if k.trace != nil {
		k.trace.onStart(t, c.os, now)
	}
}

// SetAffinity changes a task's allowed CPUs at runtime, migrating it off a
// now-forbidden CPU like sched_setaffinity does.
func (k *Kernel) SetAffinity(t *Task, set topology.CPUSet) {
	if set.Empty() {
		return
	}
	now := k.Now()
	t.Affinity = set.Clone()
	switch t.state {
	case stateRunning:
		if !set.Contains(t.cpu) {
			c := k.cpus[t.cpu]
			k.accountCPU(c, now)
			if c.current == t {
				if k.trace != nil {
					k.trace.onStop(c.os, now)
				}
				c.current = nil
				t.cpu = -1
				if len(c.queue) > 0 {
					next := c.queue[0]
					c.queue = c.queue[1:]
					k.startOn(next, c, now)
				}
			}
			t.state = stateBlocked // transiently, for placeRunnable
			k.nActive--
			k.placeRunnable(t, now)
		}
	case stateReady:
		if !set.Contains(t.cpu) {
			k.dequeue(t)
			t.state = stateBlocked
			k.nActive--
			k.placeRunnable(t, now)
		}
	}
}

// ensureTick guarantees a scheduler tick is pending while work exists.
func (k *Kernel) ensureTick(now sim.Time) {
	if k.tickScheduled || k.nActive == 0 {
		return
	}
	k.tickScheduled = true
	next := (now/k.P.Quantum + 1) * k.P.Quantum
	k.Q.At(next, k.tick)
}

// tick is the periodic scheduler pass: account progress, detect
// completions, expire timeslices, pull work to idle CPUs.
func (k *Kernel) tick(now sim.Time) {
	k.tickScheduled = false
	// One pass to find active CPUs; the phases below then touch only
	// those (the common case is a few busy cores on a 128-PU node).
	k.scratch = k.scratch[:0]
	for _, idx := range k.cpuOrder {
		c := k.cpus[idx]
		if c.current != nil || len(c.queue) > 0 {
			k.scratch = append(k.scratch, c)
		}
	}
	active := k.scratch
	k.computeThrottle(active)
	for _, c := range active {
		k.accountCPU(c, now)
	}
	// Timeslice expiry: rotate when others wait.
	for _, c := range active {
		t := c.current
		if t == nil || len(c.queue) == 0 {
			continue
		}
		if t.sliceUsed >= k.P.Timeslice {
			t.NVCtx++
			k.ctxtTotal++
			t.state = stateReady
			t.readySince = now
			t.cpu = c.os
			c.current = nil
			c.queue = append(c.queue, t)
			next := c.queue[0]
			c.queue = c.queue[1:]
			k.startOn(next, c, now)
		}
	}
	// Idle balance: pull queued tasks to idle allowed CPUs.
	for _, c := range active {
		if len(c.queue) == 0 {
			continue
		}
		remaining := c.queue[:0]
		for _, t := range c.queue {
			moved := false
			for _, pu := range t.Affinity.List() {
				dst := k.cpus[pu]
				if dst != nil && dst != c && dst.current == nil && len(dst.queue) == 0 {
					t.cpu = -1
					k.startOn(t, dst, now)
					moved = true
					break
				}
			}
			if !moved {
				remaining = append(remaining, t)
			}
		}
		c.queue = remaining
	}
	k.prevTick = now
	if k.nActive > 0 && !k.tickScheduled {
		k.tickScheduled = true
		k.Q.At(now+k.P.Quantum, k.tick)
	}
}

// recalcThrottle recomputes bandwidth throttles from the full CPU set; it
// must run whenever the set of running tasks changes between ticks
// (blocking, waking, preemption), otherwise stale throttles let the fluid
// bandwidth model briefly over- or under-serve a domain.
func (k *Kernel) recalcThrottle() {
	k.scratch2 = k.scratch2[:0]
	for _, idx := range k.cpuOrder {
		c := k.cpus[idx]
		if c.current != nil {
			k.scratch2 = append(k.scratch2, c)
		}
	}
	k.computeThrottle(k.scratch2)
}

// computeThrottle derives each NUMA domain's rate multiplier from the
// memory-bandwidth demand of currently running tasks.
func (k *Kernel) computeThrottle(active []*cpuState) {
	demand := map[int]float64{}
	for _, c := range active {
		if c.current == nil {
			continue
		}
		if cur, ok := c.current.cur.(Compute); ok && cur.BytesPerSec > 0 {
			demand[c.domain] += cur.BytesPerSec * k.smtFactor(c)
		}
	}
	for d := range k.throttle {
		delete(k.throttle, d)
	}
	for d, dem := range demand {
		nn := k.Machine.NUMAByIndex(d)
		if nn == nil || nn.BandwidthBytesPerSec <= 0 || dem <= nn.BandwidthBytesPerSec {
			k.throttle[d] = 1
			continue
		}
		th := nn.BandwidthBytesPerSec / dem
		if th < k.P.ThrottleFloor {
			th = k.P.ThrottleFloor
		}
		k.throttle[d] = th
	}
}

// smtFactor returns the speed multiplier for CPU c given sibling activity.
func (k *Kernel) smtFactor(c *cpuState) float64 {
	for _, s := range c.siblings {
		if sc := k.cpus[s]; sc != nil && sc.current != nil {
			return k.P.SMTFactor
		}
	}
	return 1
}

// rateFor combines SMT and bandwidth throttling for the task running on c.
func (k *Kernel) rateFor(c *cpuState, t *Task) float64 {
	rate := k.smtFactor(c)
	if cur, ok := t.cur.(Compute); ok && cur.BytesPerSec > 0 {
		if th, ok := k.throttle[c.domain]; ok {
			rate *= th
		}
	}
	if rate <= 0 {
		rate = k.P.ThrottleFloor
	}
	return rate
}

// accountCPU advances the CPU's accounting up to the given time, crediting
// task progress and CPU time, and driving action completions.
func (k *Kernel) accountCPU(c *cpuState, upto sim.Time) {
	for c.accountedUntil < upto {
		t := c.current
		if t == nil {
			c.accountedUntil = upto
			return
		}
		cur, ok := t.cur.(Compute)
		if !ok {
			// A running task must be computing; anything else is a
			// simulator bug.
			panic(fmt.Sprintf("sched: running %v with non-compute action %T", t, t.cur))
		}
		rate := k.rateFor(c, t)
		span := upto - c.accountedUntil
		need := sim.Time(float64(t.workLeft)/rate) + 1
		run := span
		if need < run {
			run = need
		}
		if run <= 0 {
			run = 1
		}
		sys := sim.Time(float64(run) * cur.SysFrac)
		t.STime += sys
		t.UTime += run - sys
		c.busySys += sys
		c.busyUser += run - sys
		t.sliceUsed += run
		if cur.MinfltPerSec > 0 {
			t.fltCarry += cur.MinfltPerSec * run.Seconds()
			if t.fltCarry >= 1 {
				n := uint64(t.fltCarry)
				t.MinFlt += n
				t.fltCarry -= float64(n)
			}
		}
		t.workLeft -= sim.Time(float64(run) * rate)
		c.accountedUntil += run
		if t.workLeft <= 0 {
			k.advance(t, c.accountedUntil)
			// advance may have blocked/exited the task, in which case
			// releaseCPU already started the next queued task; the loop
			// continues accounting whoever is current now.
		}
	}
}

// Procs returns all processes created on this kernel.
func (k *Kernel) Procs() []*Process { return k.procs }

// ProcByPID returns the process with the given PID, or nil.
func (k *Kernel) ProcByPID(pid int) *Process { return k.procByPID[pid] }

// AllExited reports whether every process has finished.
func (k *Kernel) AllExited() bool {
	for _, p := range k.procs {
		if !p.Exited {
			return false
		}
	}
	return true
}

// Run drives the event queue until every process has exited or maxEvents
// fire (a runaway guard).
func (k *Kernel) Run(maxEvents int) error {
	for i := 0; i < maxEvents; i++ {
		if k.AllExited() {
			return nil
		}
		if !k.Q.Step() {
			if k.AllExited() {
				return nil
			}
			return fmt.Errorf("sched: event queue drained at %v with live processes (deadlock?)", k.Now())
		}
	}
	return fmt.Errorf("sched: exceeded %d events at %v", maxEvents, k.Now())
}

// RunUntil advances simulated time to the deadline.
func (k *Kernel) RunUntil(deadline sim.Time) { k.Q.RunUntil(deadline) }

// CPUTimesSince returns (user, system, idle) jiffy-precision times for one
// CPU since boot. Idle is derived: now - busy.
func (k *Kernel) cpuTimes(idx int) (user, sys, idle sim.Time) {
	c := k.cpus[idx]
	if c == nil {
		return 0, 0, k.Now()
	}
	user, sys = c.busyUser, c.busySys
	idle = k.Now() - user - sys
	if idle < 0 {
		idle = 0
	}
	return user, sys, idle
}
