package sched

import (
	"testing"

	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

func newTestKernel(t testing.TB, params Params) *Kernel {
	t.Helper()
	m := topology.Laptop4Core()
	var q sim.Queue
	return NewKernel(m, &q, sim.NewRNG(1), params)
}

// run drives the kernel to completion with a generous event budget.
func run(t testing.TB, k *Kernel) {
	t.Helper()
	if err := k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestSingleTaskComputesAndExits(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	task := k.NewTask(p, "app", Seq(Compute{Work: 100 * sim.Millisecond}))
	run(t, k)
	if !task.Exited || !p.Exited {
		t.Fatal("task/process should have exited")
	}
	// Work of 100ms alone on a core: wall time ~100ms (quantized).
	if got := k.Now(); got < 100*sim.Millisecond || got > 102*sim.Millisecond {
		t.Fatalf("wall time = %v, want ~100ms", got)
	}
	total := task.UTime + task.STime
	if total < 99*sim.Millisecond || total > 102*sim.Millisecond {
		t.Fatalf("cpu time = %v, want ~100ms", total)
	}
	if task.NVCtx != 0 {
		t.Fatalf("uncontended task got %d nvctx", task.NVCtx)
	}
	if task.LastCPU != 0 {
		t.Fatalf("LastCPU = %d, want 0", task.LastCPU)
	}
}

func TestSysFracAccounting(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	task := k.NewTask(p, "app", Seq(Compute{Work: 1 * sim.Second, SysFrac: 0.25}))
	run(t, k)
	total := float64(task.UTime + task.STime)
	if frac := float64(task.STime) / total; frac < 0.24 || frac > 0.26 {
		t.Fatalf("stime fraction = %v, want ~0.25", frac)
	}
}

func TestOversubscriptionContextSwitches(t *testing.T) {
	// The paper's Table 1 phenomenon: many busy threads time-slicing one
	// core produce enormous non-voluntary context switch counts, and each
	// thread only gets ~1/n of the CPU.
	k := newTestKernel(t, Params{Timeslice: 2 * sim.Millisecond})
	cpus := topology.NewCPUSet(1)
	p := k.NewProcess("app", cpus)
	const n = 4
	var tasks []*Task
	for i := 0; i < n; i++ {
		tasks = append(tasks, k.NewTask(p, "worker", Seq(Compute{Work: 1 * sim.Second})))
	}
	run(t, k)
	// Serialized: ~4 seconds of wall time.
	if got := k.Now().Seconds(); got < 3.9 || got > 4.2 {
		t.Fatalf("wall = %vs, want ~4s", got)
	}
	var totalNV uint64
	for _, task := range tasks {
		if task.LastCPU != 1 {
			t.Fatalf("task ran on CPU %d outside affinity", task.LastCPU)
		}
		totalNV += task.NVCtx
	}
	// 4s / 2ms slice = ~2000 rotations across the tasks.
	if totalNV < 1500 || totalNV > 2500 {
		t.Fatalf("total nvctx = %d, want ~2000", totalNV)
	}
	// No migrations: only one allowed CPU.
	for _, task := range tasks {
		if task.Migrations != 0 {
			t.Fatalf("pinned task migrated %d times", task.Migrations)
		}
	}
}

func TestPinnedTasksNoContention(t *testing.T) {
	// Table 3 phenomenon: one thread per core, each pinned: nvctx ~ 0.
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.RangeCPUSet(0, 3))
	var tasks []*Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, k.NewTask(p, "worker",
			Seq(Compute{Work: 500 * sim.Millisecond}),
			WithAffinity(topology.NewCPUSet(i))))
	}
	run(t, k)
	if got := k.Now().Seconds(); got > 0.55 {
		t.Fatalf("parallel wall = %vs, want ~0.5s", got)
	}
	for _, task := range tasks {
		if task.NVCtx != 0 || task.Migrations != 0 {
			t.Fatalf("%v: nvctx=%d migrations=%d, want 0/0", task, task.NVCtx, task.Migrations)
		}
	}
}

func TestUnboundTasksMigrateViaIdleBalance(t *testing.T) {
	// Table 2 phenomenon: unbound threads (process-wide affinity) get
	// placed and re-balanced; with more tasks than cores, idle balancing
	// moves waiting work and migrations appear.
	k := newTestKernel(t, Params{})
	aff := topology.RangeCPUSet(0, 3)
	p := k.NewProcess("app", aff)
	var tasks []*Task
	// Staggered finish times force rebalancing.
	for i := 0; i < 6; i++ {
		w := sim.Time(i+1) * 200 * sim.Millisecond
		tasks = append(tasks, k.NewTask(p, "worker", Seq(Compute{Work: w})))
	}
	run(t, k)
	var migrations uint64
	for _, task := range tasks {
		migrations += task.Migrations
	}
	if migrations == 0 {
		t.Fatal("expected at least one migration from idle balancing")
	}
}

func TestMemoryBandwidthThrottling(t *testing.T) {
	// Build a machine with a tight NUMA bandwidth cap: 2 memory-bound
	// tasks on 2 cores demand 2x the cap, so each runs at ~50% speed and
	// the wall time doubles, while CPU (stall-inclusive) time stays 100%.
	m := topology.MustBuild(topology.Spec{
		Name: "bw", Packages: 1, NUMAPerPackage: 1, L3PerNUMA: 1,
		CoresPerL3: 2, ThreadsPerCore: 1, MemBytes: 1 << 30,
		L3Bytes: 1 << 20, L2Bytes: 1 << 18, L1Bytes: 1 << 15,
		NUMABandwidth: 10e9,
	})
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{})
	p := k.NewProcess("app", topology.RangeCPUSet(0, 1))
	comp := Compute{Work: 1 * sim.Second, BytesPerSec: 10e9}
	t0 := k.NewTask(p, "w0", Seq(comp), WithAffinity(topology.NewCPUSet(0)))
	t1 := k.NewTask(p, "w1", Seq(comp), WithAffinity(topology.NewCPUSet(1)))
	run(t, k)
	if got := k.Now().Seconds(); got < 1.9 || got > 2.1 {
		t.Fatalf("wall = %vs, want ~2s (50%% throttle)", got)
	}
	// Stalls are on-CPU: each task accrues ~2s CPU for 1s of work.
	for _, task := range []*Task{t0, t1} {
		if cpu := (task.UTime + task.STime).Seconds(); cpu < 1.9 || cpu > 2.1 {
			t.Fatalf("cpu time = %vs, want ~2s", cpu)
		}
	}
}

func TestBandwidthSingleTaskUnthrottled(t *testing.T) {
	m := topology.MustBuild(topology.Spec{
		Name: "bw", Packages: 1, NUMAPerPackage: 1, L3PerNUMA: 1,
		CoresPerL3: 2, ThreadsPerCore: 1, MemBytes: 1 << 30,
		L3Bytes: 1 << 20, L2Bytes: 1 << 18, L1Bytes: 1 << 15,
		NUMABandwidth: 10e9,
	})
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	k.NewTask(p, "w0", Seq(Compute{Work: 1 * sim.Second, BytesPerSec: 9e9}))
	run(t, k)
	if got := k.Now().Seconds(); got > 1.05 {
		t.Fatalf("wall = %vs, want ~1s (below cap)", got)
	}
}

func TestSMTSlowdown(t *testing.T) {
	// Two tasks on the two HWTs of one core run at SMTFactor speed.
	k := newTestKernel(t, Params{SMTFactor: 0.5})
	p := k.NewProcess("app", topology.NewCPUSet(0, 4)) // core 0's PU pair on the laptop
	k.NewTask(p, "w0", Seq(Compute{Work: 1 * sim.Second}), WithAffinity(topology.NewCPUSet(0)))
	k.NewTask(p, "w1", Seq(Compute{Work: 1 * sim.Second}), WithAffinity(topology.NewCPUSet(4)))
	run(t, k)
	if got := k.Now().Seconds(); got < 1.9 || got > 2.1 {
		t.Fatalf("wall = %vs, want ~2s at SMT factor 0.5", got)
	}
}

func TestSleepAndVoluntarySwitches(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	task := k.NewTask(p, "sleeper", Seq(
		Compute{Work: 10 * sim.Millisecond},
		Sleep{D: 500 * sim.Millisecond},
		Compute{Work: 10 * sim.Millisecond},
	))
	run(t, k)
	if task.VCtx != 1 {
		t.Fatalf("vctx = %d, want 1 (one sleep)", task.VCtx)
	}
	if got := k.Now(); got < 520*sim.Millisecond || got > 530*sim.Millisecond {
		t.Fatalf("wall = %v, want ~521ms", got)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.RangeCPUSet(0, 3))
	b := k.NewBarrier(3)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		work := sim.Time(i+1) * 50 * sim.Millisecond
		k.NewTask(p, "w", Seq(
			Compute{Work: work},
			WaitBarrier{B: b},
			Call{Fn: func(sim.Time) { order = append(order, i) }},
		), WithAffinity(topology.NewCPUSet(i)))
	}
	run(t, k)
	if len(order) != 3 {
		t.Fatalf("released %d tasks, want 3", len(order))
	}
	// Everyone is released at/after the slowest arriver (150ms).
	if got := k.Now(); got < 150*sim.Millisecond {
		t.Fatalf("barrier released too early: %v", got)
	}
	// Fast arrivers blocked voluntarily.
}

func TestBarrierReusable(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.RangeCPUSet(0, 1))
	b := k.NewBarrier(2)
	hits := 0
	mk := func(cpu int) Behavior {
		step := 0
		return BehaviorFunc(func(t *Task, now sim.Time) Action {
			step++
			switch step {
			case 1, 3:
				return Compute{Work: 10 * sim.Millisecond}
			case 2, 4:
				return WaitBarrier{B: b}
			case 5:
				return Call{Fn: func(sim.Time) { hits++ }}
			}
			return nil
		})
	}
	k.NewTask(p, "a", mk(0), WithAffinity(topology.NewCPUSet(0)))
	k.NewTask(p, "b", mk(1), WithAffinity(topology.NewCPUSet(1)))
	run(t, k)
	if hits != 2 {
		t.Fatalf("hits = %d, want 2 (both passed two barrier generations)", hits)
	}
}

func TestGateSignalAndCredits(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.RangeCPUSet(0, 1))
	g := k.NewGate()
	done := false
	k.NewTask(p, "waiter", Seq(
		Compute{Work: 5 * sim.Millisecond},
		WaitGate{G: g},
		Call{Fn: func(sim.Time) { done = true }},
	), WithAffinity(topology.NewCPUSet(0)))
	k.NewTask(p, "signaller", Seq(
		Compute{Work: 100 * sim.Millisecond},
		Call{Fn: func(sim.Time) { g.Signal(1) }},
	), WithAffinity(topology.NewCPUSet(1)))
	run(t, k)
	if !done {
		t.Fatal("gated task never released")
	}
	// Credit path: signal first, wait later consumes without blocking.
	g2 := k.NewGate()
	g2.Signal(1)
	passed := false
	k.NewTask(p, "credit", Seq(
		WaitGate{G: g2},
		Call{Fn: func(sim.Time) { passed = true }},
		Compute{Work: sim.Millisecond},
	), WithAffinity(topology.NewCPUSet(0)))
	run(t, k)
	if !passed {
		t.Fatal("credited gate should not block")
	}
}

func TestWakePreemptingMonitor(t *testing.T) {
	// A preempting monitor that wakes periodically on a fully busy CPU
	// inflicts non-voluntary switches on the victim (the paper's Table 3:
	// only the thread sharing the ZeroSum core shows nvctx).
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.RangeCPUSet(0, 1))
	victim := k.NewTask(p, "victim", Seq(Compute{Work: 1 * sim.Second}),
		WithAffinity(topology.NewCPUSet(1)))
	bystander := k.NewTask(p, "bystander", Seq(Compute{Work: 1 * sim.Second}),
		WithAffinity(topology.NewCPUSet(0)))
	mon := func() Behavior {
		i := 0
		return BehaviorFunc(func(t *Task, now sim.Time) Action {
			i++
			if i > 20 {
				return nil
			}
			if i%2 == 1 {
				return Sleep{D: 100 * sim.Millisecond}
			}
			return Compute{Work: 2 * sim.Millisecond}
		})
	}()
	monitor := k.NewTask(p, "zerosum", mon,
		WithAffinity(topology.NewCPUSet(1)), WithWakePreempt())
	run(t, k)
	if victim.NVCtx < 5 {
		t.Fatalf("victim nvctx = %d, want >= 5 (one per monitor wake)", victim.NVCtx)
	}
	if bystander.NVCtx != 0 {
		t.Fatalf("bystander nvctx = %d, want 0", bystander.NVCtx)
	}
	if monitor.NVCtx != 0 {
		t.Fatalf("monitor should not be preempted, got %d", monitor.NVCtx)
	}
}

func TestSetAffinityMigratesRunningTask(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.RangeCPUSet(0, 3))
	task := k.NewTask(p, "w", Seq(Compute{Work: 500 * sim.Millisecond}),
		WithAffinity(topology.NewCPUSet(0)))
	k.Q.After(100*sim.Millisecond, func(sim.Time) {
		k.SetAffinity(task, topology.NewCPUSet(2))
	})
	run(t, k)
	if task.LastCPU != 2 {
		t.Fatalf("LastCPU = %d, want 2 after affinity change", task.LastCPU)
	}
	if task.Migrations == 0 {
		t.Fatal("affinity change should count a migration")
	}
	if !task.Exited {
		t.Fatal("task should finish on the new CPU")
	}
}

func TestMinorFaultAccrual(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	task := k.NewTask(p, "w", Seq(Compute{Work: 1 * sim.Second, MinfltPerSec: 1000}))
	run(t, k)
	if task.MinFlt < 950 || task.MinFlt > 1050 {
		t.Fatalf("minflt = %d, want ~1000", task.MinFlt)
	}
}

func TestProcessRSSWatermarks(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	p.SetRSS(100 << 10)
	p.SetRSS(50 << 10)
	if p.VmRSSKB != 50<<10 || p.VmHWMKB != 100<<10 {
		t.Fatalf("rss=%d hwm=%d", p.VmRSSKB, p.VmHWMKB)
	}
	p.SetVmSize(900 << 10) // above the 512 MB default, raises the peak
	p.SetVmSize(600 << 10)
	if p.VmSizeKB != 600<<10 || p.VmPeakKB != 900<<10 {
		t.Fatalf("size=%d peak=%d", p.VmSizeKB, p.VmPeakKB)
	}
}

func TestDeterminism(t *testing.T) {
	type summary struct {
		wall  sim.Time
		nvctx uint64
		mig   uint64
	}
	runOnce := func() summary {
		m := topology.Laptop4Core()
		var q sim.Queue
		k := NewKernel(m, &q, sim.NewRNG(99), Params{Timeslice: 2 * sim.Millisecond})
		p := k.NewProcess("app", topology.RangeCPUSet(0, 1))
		var tasks []*Task
		for i := 0; i < 5; i++ {
			tasks = append(tasks, k.NewTask(p, "w", Seq(Compute{Work: 300 * sim.Millisecond})))
		}
		if err := k.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		var s summary
		s.wall = k.Now()
		for _, task := range tasks {
			s.nvctx += task.NVCtx
			s.mig += task.Migrations
		}
		return s
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestKernelDetectsDeadlock(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	g := k.NewGate() // never signalled
	k.NewTask(p, "stuck", Seq(Compute{Work: sim.Millisecond}, WaitGate{G: g}))
	if err := k.Run(1_000_000); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestWallClockMapping(t *testing.T) {
	k := newTestKernel(t, Params{})
	w0 := k.WallClock()
	p := k.NewProcess("app", topology.NewCPUSet(0))
	k.NewTask(p, "w", Seq(Compute{Work: 2 * sim.Second}))
	run(t, k)
	if d := k.WallClock().Sub(w0); d < 1900e6 || d > 2100e6 {
		t.Fatalf("wall delta = %v, want ~2s", d)
	}
}

func BenchmarkOversubscribedSecond(b *testing.B) {
	// Cost of simulating 1s of 8 threads time-slicing one core at 1ms
	// quantum: the dominant regime of the Table 1 experiment.
	for i := 0; i < b.N; i++ {
		m := topology.Laptop4Core()
		var q sim.Queue
		k := NewKernel(m, &q, sim.NewRNG(1), Params{Timeslice: 2 * sim.Millisecond})
		p := k.NewProcess("app", topology.NewCPUSet(0))
		for j := 0; j < 8; j++ {
			k.NewTask(p, "w", Seq(Compute{Work: 125 * sim.Millisecond}))
		}
		if err := k.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
