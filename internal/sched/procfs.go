package sched

import (
	"fmt"
	"sort"

	"zerosum/internal/proc"
	"zerosum/internal/sim"
)

// jiffies converts simulated time to USER_HZ jiffies.
func jiffies(t sim.Time) uint64 {
	if t < 0 {
		return 0
	}
	return uint64(t / (sim.Second / proc.ClockTick))
}

// FS serves authentic /proc text rendered from live kernel state. It
// implements proc.FS for one monitored process, so the ZeroSum monitor runs
// the exact same parsing code against the simulator as against a real
// Linux host.
type FS struct {
	k   *Kernel
	pid int
}

// ProcFS returns the /proc view for the process with the given PID.
func (k *Kernel) ProcFS(pid int) *FS { return &FS{k: k, pid: pid} }

var _ proc.FS = (*FS)(nil)

// SelfPID implements proc.FS.
func (f *FS) SelfPID() int { return f.pid }

// Hostname implements proc.FS.
func (f *FS) Hostname() string { return f.k.Hostname() }

func (f *FS) findTask(pid, tid int) (*Process, *Task, error) {
	p := f.k.procByPID[pid]
	if p == nil {
		return nil, nil, fmt.Errorf("sched: no such process %d", pid)
	}
	for _, t := range p.Tasks {
		if t.TID == tid && !t.Exited {
			return p, t, nil
		}
	}
	return nil, nil, fmt.Errorf("sched: no such task %d/%d", pid, tid)
}

// Tasks implements proc.FS: the live LWP ids of a process, ascending.
func (f *FS) Tasks(pid int) ([]int, error) {
	p := f.k.procByPID[pid]
	if p == nil {
		return nil, fmt.Errorf("sched: no such process %d", pid)
	}
	var tids []int
	for _, t := range p.LiveTasks() {
		tids = append(tids, t.TID)
	}
	sort.Ints(tids)
	return tids, nil
}

// TaskStat implements proc.FS.
func (f *FS) TaskStat(pid, tid int) ([]byte, error) {
	p, t, err := f.findTask(pid, tid)
	if err != nil {
		return nil, err
	}
	st := proc.TaskStat{
		PID:       t.TID,
		Comm:      t.Comm,
		State:     t.State(),
		PPID:      1,
		MinFlt:    t.MinFlt,
		MajFlt:    t.MajFlt,
		UTime:     jiffies(t.UTime),
		STime:     jiffies(t.STime),
		Priority:  20,
		Nice:      t.Nice,
		NumThrs:   len(p.LiveTasks()),
		StartTime: jiffies(t.StartTime),
		VSize:     p.VmSizeKB * 1024,
		RSS:       int64(p.VmRSSKB / 4),
		Processor: maxInt(t.LastCPU, 0),
	}
	return []byte(proc.RenderTaskStat(st)), nil
}

// TaskStatus implements proc.FS.
func (f *FS) TaskStatus(pid, tid int) ([]byte, error) {
	p, t, err := f.findTask(pid, tid)
	if err != nil {
		return nil, err
	}
	st := proc.TaskStatus{
		Name:            t.Comm,
		State:           t.State(),
		Tgid:            p.PID,
		Pid:             t.TID,
		PPid:            1,
		Threads:         len(p.LiveTasks()),
		VmPeakKB:        p.VmPeakKB,
		VmSizeKB:        p.VmSizeKB,
		VmHWMKB:         p.VmHWMKB,
		VmRSSKB:         p.VmRSSKB,
		CpusAllowed:     t.Affinity,
		VoluntaryCtxt:   t.VCtx,
		NonvoluntaryCtx: t.NVCtx,
	}
	return []byte(proc.RenderTaskStatus(st)), nil
}

// ProcessStatus implements proc.FS.
func (f *FS) ProcessStatus(pid int) ([]byte, error) {
	p := f.k.procByPID[pid]
	if p == nil {
		return nil, fmt.Errorf("sched: no such process %d", pid)
	}
	main := p.Main()
	st := proc.TaskStatus{
		Name:     p.Comm,
		State:    proc.StateSleeping,
		Tgid:     p.PID,
		Pid:      p.PID,
		PPid:     1,
		Threads:  len(p.LiveTasks()),
		VmPeakKB: p.VmPeakKB,
		VmSizeKB: p.VmSizeKB,
		VmHWMKB:  p.VmHWMKB,
		VmRSSKB:  p.VmRSSKB,
		// The process-level mask is the launcher's cpuset.
		CpusAllowed: p.Affinity,
	}
	if main != nil {
		st.State = main.State()
		st.VoluntaryCtxt = main.VCtx
		st.NonvoluntaryCtx = main.NVCtx
	}
	return []byte(proc.RenderTaskStatus(st)), nil
}

// ProcessIO implements proc.FS.
func (f *FS) ProcessIO(pid int) ([]byte, error) {
	p := f.k.procByPID[pid]
	if p == nil {
		return nil, fmt.Errorf("sched: no such process %d", pid)
	}
	return []byte(proc.RenderTaskIO(p.IO)), nil
}

// Meminfo implements proc.FS: node-wide memory derived from process RSS.
func (f *FS) Meminfo() ([]byte, error) {
	totalKB := f.k.Machine.MemBytes / 1024
	usedKB := f.k.P.BaselineMemKB
	for _, p := range f.k.procs {
		if !p.Exited {
			usedKB += p.VmRSSKB
		}
	}
	freeKB := uint64(0)
	if usedKB < totalKB {
		freeKB = totalKB - usedKB
	}
	cachedKB := f.k.P.BaselineMemKB / 2
	avail := freeKB + cachedKB
	if avail > totalKB {
		avail = totalKB
	}
	m := proc.Meminfo{
		MemTotalKB:     totalKB,
		MemFreeKB:      freeKB,
		MemAvailableKB: avail,
		BuffersKB:      f.k.P.BaselineMemKB / 8,
		CachedKB:       cachedKB,
		ActiveKB:       usedKB,
		InactiveKB:     cachedKB / 2,
	}
	return []byte(proc.RenderMeminfo(m)), nil
}

// Stat implements proc.FS: per-CPU jiffy accounting from the scheduler.
func (f *FS) Stat() ([]byte, error) {
	var st proc.Stat
	st.BTime = uint64(f.k.bootWall.Unix())
	st.Ctxt = f.k.ctxtTotal
	st.Processes = f.k.forks
	var running, blocked uint64
	for _, p := range f.k.procs {
		for _, t := range p.Tasks {
			switch t.state {
			case stateRunning, stateReady:
				running++
			case stateBlocked:
				blocked++
			}
		}
	}
	st.Running, st.Blocked = running, 0
	_ = blocked // /proc procs_blocked counts D-state only; we model none
	for _, idx := range f.k.cpuOrder {
		user, sys, idle := f.k.cpuTimes(idx)
		row := proc.CPUTimes{
			CPU:    idx,
			User:   jiffies(user),
			System: jiffies(sys),
			Idle:   jiffies(idle),
		}
		st.PerCPU = append(st.PerCPU, row)
		st.Aggregate.User += row.User
		st.Aggregate.System += row.System
		st.Aggregate.Idle += row.Idle
	}
	st.Aggregate.CPU = -1
	return []byte(proc.RenderStat(st)), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
