package sched

import (
	"fmt"
	"slices"

	"zerosum/internal/proc"
)

// The simulator implements proc.BufFS so the monitor exercises its buffered
// fast path against simulated kernels too — the Into methods render into
// the caller's buffer (the render itself still allocates; the simulator is
// a correctness rig, not a perf target) and simTaskReader mimics the
// lifetime semantics of a cached /proc descriptor: opening a dead tid
// fails, and reads start failing the moment the thread exits, which is how
// the monitor's fd-cache invalidation is driven under chaos testing.

var _ proc.BufFS = (*FS)(nil)

// TasksInto implements proc.BufFS.
func (f *FS) TasksInto(pid int, tids []int) ([]int, error) {
	p := f.k.procByPID[pid]
	if p == nil {
		return tids, fmt.Errorf("sched: no such process %d", pid)
	}
	start := len(tids)
	for _, t := range p.LiveTasks() {
		tids = append(tids, t.TID)
	}
	slices.Sort(tids[start:])
	return tids, nil
}

// OpenTask implements proc.BufFS.
func (f *FS) OpenTask(pid, tid int) (proc.TaskReader, error) {
	if _, _, err := f.findTask(pid, tid); err != nil {
		return nil, err
	}
	return &simTaskReader{f: f, pid: pid, tid: tid}, nil
}

// ProcessStatusInto implements proc.BufFS.
func (f *FS) ProcessStatusInto(pid int, buf []byte) ([]byte, error) {
	b, err := f.ProcessStatus(pid)
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

// ProcessIOInto implements proc.BufFS.
func (f *FS) ProcessIOInto(pid int, buf []byte) ([]byte, error) {
	b, err := f.ProcessIO(pid)
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

// MeminfoInto implements proc.BufFS.
func (f *FS) MeminfoInto(buf []byte) ([]byte, error) {
	b, err := f.Meminfo()
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

// StatInto implements proc.BufFS.
func (f *FS) StatInto(buf []byte) ([]byte, error) {
	b, err := f.Stat()
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

// simTaskReader is the simulator's cached-descriptor analogue: it stays
// bound to one (pid, tid) and fails reads once the task exits.
type simTaskReader struct {
	f        *FS
	pid, tid int
}

func (r *simTaskReader) StatInto(buf []byte) ([]byte, error) {
	b, err := r.f.TaskStat(r.pid, r.tid)
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

func (r *simTaskReader) StatusInto(buf []byte) ([]byte, error) {
	b, err := r.f.TaskStatus(r.pid, r.tid)
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

func (r *simTaskReader) Close() error { return nil }
