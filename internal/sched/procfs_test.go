package sched

import (
	"strings"
	"testing"

	"zerosum/internal/proc"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

func TestProcFSTaskListing(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("miniqmc", topology.RangeCPUSet(0, 3))
	main := k.NewTask(p, "miniqmc", Seq(Compute{Work: 100 * sim.Millisecond}))
	w1 := k.NewTask(p, "omp", Seq(Compute{Work: 100 * sim.Millisecond}), WithKind(KindOpenMP))
	fs := k.ProcFS(p.PID)
	if fs.SelfPID() != p.PID {
		t.Fatal("SelfPID mismatch")
	}
	tids, err := fs.Tasks(p.PID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 2 || tids[0] != main.TID || tids[1] != w1.TID {
		t.Fatalf("tids = %v, want [%d %d]", tids, main.TID, w1.TID)
	}
	if main.TID != p.PID {
		t.Fatalf("main TID %d != PID %d", main.TID, p.PID)
	}
	run(t, k)
	// Exited tasks disappear from the listing.
	tids, err = fs.Tasks(p.PID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 0 {
		t.Fatalf("exited tasks still listed: %v", tids)
	}
	if _, err := fs.Tasks(99999); err == nil {
		t.Fatal("unknown pid should error")
	}
}

func TestProcFSTaskStatParsesAndAccounts(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.NewCPUSet(2))
	task := k.NewTask(p, "app", nil)
	_ = task
	// Replace behavior: run 500ms at 20% sys then park on a gate so the
	// task stays alive for /proc reads.
	g := k.NewGate()
	p2 := k.NewProcess("app2", topology.NewCPUSet(2))
	t2 := k.NewTask(p2, "app2", Seq(
		Compute{Work: 500 * sim.Millisecond, SysFrac: 0.2, MinfltPerSec: 100},
		WaitGate{G: g},
	))
	k.RunUntil(2 * sim.Second)
	fs := k.ProcFS(p2.PID)
	raw, err := fs.TaskStat(p2.PID, t2.TID)
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.ParseTaskStat(raw)
	if err != nil {
		t.Fatal(err)
	}
	if st.PID != t2.TID || st.Comm != "app2" {
		t.Fatalf("identity wrong: %+v", st)
	}
	// ~500ms CPU = ~50 jiffies, 20% sys.
	if st.UTime < 35 || st.UTime > 45 {
		t.Fatalf("utime = %d jiffies, want ~40", st.UTime)
	}
	if st.STime < 8 || st.STime > 12 {
		t.Fatalf("stime = %d jiffies, want ~10", st.STime)
	}
	if st.State != proc.StateSleeping {
		t.Fatalf("state = %c, want S (parked)", byte(st.State))
	}
	if st.Processor != 2 {
		t.Fatalf("processor = %d, want 2", st.Processor)
	}
	if st.MinFlt < 40 || st.MinFlt > 60 {
		t.Fatalf("minflt = %d, want ~50", st.MinFlt)
	}
	g.Signal(1)
}

func TestProcFSTaskStatusAffinity(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.RangeCPUSet(1, 3))
	g := k.NewGate()
	task := k.NewTask(p, "pinned", Seq(Compute{Work: 10 * sim.Millisecond}, WaitGate{G: g}),
		WithAffinity(topology.NewCPUSet(2)))
	k.RunUntil(100 * sim.Millisecond)
	fs := k.ProcFS(p.PID)
	raw, err := fs.TaskStatus(p.PID, task.TID)
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.ParseTaskStatus(raw)
	if err != nil {
		t.Fatal(err)
	}
	if st.CpusAllowed.String() != "2" {
		t.Fatalf("task affinity = %q, want 2", st.CpusAllowed.String())
	}
	if st.VoluntaryCtxt != 1 {
		t.Fatalf("vctx = %d, want 1 (the gate wait)", st.VoluntaryCtxt)
	}
	// Process-level status carries the launcher cpuset.
	rawP, err := fs.ProcessStatus(p.PID)
	if err != nil {
		t.Fatal(err)
	}
	stP, err := proc.ParseTaskStatus(rawP)
	if err != nil {
		t.Fatal(err)
	}
	if stP.CpusAllowed.String() != "1-3" {
		t.Fatalf("process affinity = %q, want 1-3", stP.CpusAllowed.String())
	}
	if stP.Threads != 1 {
		t.Fatalf("threads = %d, want 1", stP.Threads)
	}
	g.Signal(1)
}

func TestProcFSMeminfoTracksRSS(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	fs := k.ProcFS(p.PID)
	read := func() proc.Meminfo {
		raw, err := fs.Meminfo()
		if err != nil {
			t.Fatal(err)
		}
		m, err := proc.ParseMeminfo(raw)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	before := read()
	p.SetRSS(4 << 20) // 4 GB
	after := read()
	if before.MemFreeKB <= after.MemFreeKB {
		t.Fatalf("MemFree should drop with RSS growth: %d -> %d", before.MemFreeKB, after.MemFreeKB)
	}
	wantTotal := k.Machine.MemBytes / 1024
	if after.MemTotalKB != wantTotal {
		t.Fatalf("MemTotal = %d, want %d", after.MemTotalKB, wantTotal)
	}
	drop := before.MemFreeKB - after.MemFreeKB
	if drop < 4<<20-(64<<10)-1000 || drop > 4<<20 {
		t.Fatalf("free drop = %d KB, want ~4GB minus default RSS", drop)
	}
}

func TestProcFSStatPerCPU(t *testing.T) {
	k := newTestKernel(t, Params{})
	p := k.NewProcess("app", topology.NewCPUSet(1))
	k.NewTask(p, "w", Seq(Compute{Work: 1 * sim.Second, SysFrac: 0.1}))
	run(t, k)
	fs := k.ProcFS(p.PID)
	raw, err := fs.Stat()
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.ParseStat(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerCPU) != k.Machine.NumPUs() {
		t.Fatalf("per-cpu rows = %d, want %d", len(st.PerCPU), k.Machine.NumPUs())
	}
	var busy *proc.CPUTimes
	for i := range st.PerCPU {
		if st.PerCPU[i].CPU == 1 {
			busy = &st.PerCPU[i]
		} else if st.PerCPU[i].User != 0 {
			t.Fatalf("cpu %d should be idle, got %+v", st.PerCPU[i].CPU, st.PerCPU[i])
		}
	}
	if busy == nil {
		t.Fatal("no row for cpu 1")
	}
	if busy.User < 85 || busy.User > 95 {
		t.Fatalf("cpu1 user = %d jiffies, want ~90", busy.User)
	}
	if busy.System < 8 || busy.System > 12 {
		t.Fatalf("cpu1 system = %d jiffies, want ~10", busy.System)
	}
	if st.Ctxt == 0 {
		t.Fatal("context switch counter should be positive (exit switch)")
	}
	if !strings.Contains(string(raw), "btime") {
		t.Fatal("missing btime")
	}
}

func TestProcFSErrorsOnMissing(t *testing.T) {
	k := newTestKernel(t, Params{})
	fs := k.ProcFS(1)
	if _, err := fs.TaskStat(1, 1); err == nil {
		t.Fatal("missing process should error")
	}
	p := k.NewProcess("app", topology.NewCPUSet(0))
	if _, err := fs.TaskStat(p.PID, 424242); err == nil {
		t.Fatal("missing task should error")
	}
	if _, err := fs.ProcessStatus(424242); err == nil {
		t.Fatal("missing process status should error")
	}
}

func TestJiffies(t *testing.T) {
	if jiffies(sim.Second) != proc.ClockTick {
		t.Fatalf("1s = %d jiffies, want %d", jiffies(sim.Second), proc.ClockTick)
	}
	if jiffies(-5) != 0 {
		t.Fatal("negative time should clamp to 0")
	}
	if jiffies(25*sim.Millisecond) != 2 {
		t.Fatalf("25ms = %d jiffies, want 2", jiffies(25*sim.Millisecond))
	}
}
