// Package sched implements a discrete-event simulation of an operating
// system kernel scheduler for one or more HPC compute nodes. It is the
// substrate standing in for the Linux CFS scheduler on the paper's Frontier
// nodes: tasks (LWPs) with affinity masks run on hardware threads, are
// preempted at timeslice expiry (non-voluntary context switches), block
// voluntarily on sleeps/barriers (voluntary context switches), migrate when
// idle CPUs pull waiting work, and accrue user/system jiffies that the
// package serves back in authentic /proc text via ProcFS.
//
// Two contention models shape task progress exactly as the paper's
// miniQMC experiments require: a per-NUMA-domain memory-bandwidth cap
// (stalled cycles still accrue CPU time, so seven memory-bound threads on
// seven cores are only ~3x faster than seven threads time-slicing one
// core), and an SMT slowdown when both hardware threads of a core are busy.
package sched

import (
	"fmt"

	"zerosum/internal/proc"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

// ThreadKind classifies an LWP the way ZeroSum's report does.
type ThreadKind int

// Thread kinds reported in the LWP table.
const (
	KindMain ThreadKind = iota
	KindOpenMP
	KindZeroSum
	KindOther
)

func (k ThreadKind) String() string {
	switch k {
	case KindMain:
		return "Main"
	case KindOpenMP:
		return "OpenMP"
	case KindZeroSum:
		return "ZeroSum"
	default:
		return "Other"
	}
}

// Action is one step of a task's life. The kernel executes the current
// action to completion (or preemption) and then asks the task's Behavior
// for the next one.
type Action interface{ isAction() }

// Compute burns CPU. Work is nanoseconds of full-speed execution; the
// actual wall time stretches under SMT sharing and memory-bandwidth
// throttling (during which CPU time still accrues, like stalled cycles on
// real hardware).
type Compute struct {
	Work sim.Time
	// SysFrac is the fraction of CPU time accounted as system time
	// (syscalls, kernel-mediated data transfers).
	SysFrac float64
	// BytesPerSec is the full-speed memory-bandwidth demand; zero means
	// the loop runs from cache and is never throttled.
	BytesPerSec float64
	// MinfltPerSec adds minor page faults while computing.
	MinfltPerSec float64
}

// Sleep blocks the task for a fixed duration (voluntary context switch).
type Sleep struct{ D sim.Time }

// WaitBarrier blocks until every participant of the barrier has arrived.
// The last arriver does not block.
type WaitBarrier struct{ B *Barrier }

// WaitGate blocks until the gate is signalled (MPI recv, GPU completion...).
type WaitGate struct{ G *Gate }

// Call runs an embedded Go callback at the current simulated instant, with
// no simulated cost. The ZeroSum monitor's sampling logic executes through
// Call actions; its CPU cost is modelled by surrounding Compute actions.
type Call struct{ Fn func(now sim.Time) }

// Deferred resolves to a concrete action only when the task reaches it,
// letting an earlier Call in the same sequence compute its parameters
// (e.g. "sleep until the I/O the Call just issued completes").
type Deferred struct{ Fn func() Action }

// Exit ends the task.
type Exit struct{}

func (Compute) isAction()     {}
func (Deferred) isAction()    {}
func (Sleep) isAction()       {}
func (WaitBarrier) isAction() {}
func (WaitGate) isAction()    {}
func (Call) isAction()        {}
func (Exit) isAction()        {}

// Behavior produces a task's next action. Returning nil ends the task.
type Behavior interface {
	Next(t *Task, now sim.Time) Action
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(t *Task, now sim.Time) Action

// Next implements Behavior.
func (f BehaviorFunc) Next(t *Task, now sim.Time) Action { return f(t, now) }

// SeqBehavior replays a fixed slice of actions, then exits.
type SeqBehavior struct {
	Actions []Action
	i       int
}

// Next implements Behavior.
func (s *SeqBehavior) Next(*Task, sim.Time) Action {
	if s.i >= len(s.Actions) {
		return nil
	}
	a := s.Actions[s.i]
	s.i++
	return a
}

// Seq builds a SeqBehavior.
func Seq(actions ...Action) *SeqBehavior { return &SeqBehavior{Actions: actions} }

// Process is a simulated OS process: a PID, a cpuset and a set of tasks.
type Process struct {
	PID      int
	Comm     string
	Affinity topology.CPUSet
	Tasks    []*Task

	// Memory footprint served through /proc/<pid>/status. VmHWM/VmPeak
	// track high watermarks automatically via SetRSS/SetVmSize.
	VmRSSKB  uint64
	VmHWMKB  uint64
	VmSizeKB uint64
	VmPeakKB uint64

	// Cumulative I/O issued by the process, served via /proc/<pid>/io.
	IO proc.TaskIO

	StartTime sim.Time
	Exited    bool
	kernel    *Kernel
}

// AddIO accounts a completed I/O operation against the process counters.
func (p *Process) AddIO(read bool, bytes uint64) {
	if read {
		p.IO.RChar += bytes
		p.IO.ReadBytes += bytes
		p.IO.SyscR++
	} else {
		p.IO.WChar += bytes
		p.IO.WriteBytes += bytes
		p.IO.SyscW++
	}
}

// SetRSS updates the resident set size, maintaining the high watermark.
func (p *Process) SetRSS(kb uint64) {
	p.VmRSSKB = kb
	if kb > p.VmHWMKB {
		p.VmHWMKB = kb
	}
}

// SetVmSize updates the virtual size, maintaining the peak.
func (p *Process) SetVmSize(kb uint64) {
	p.VmSizeKB = kb
	if kb > p.VmPeakKB {
		p.VmPeakKB = kb
	}
}

// Main returns the process's first task (TID == PID), or nil.
func (p *Process) Main() *Task {
	if len(p.Tasks) == 0 {
		return nil
	}
	return p.Tasks[0]
}

// LiveTasks returns the tasks that have not exited, ascending by TID
// (the contents of /proc/<pid>/task).
func (p *Process) LiveTasks() []*Task {
	var out []*Task
	for _, t := range p.Tasks {
		if !t.Exited {
			out = append(out, t)
		}
	}
	return out
}

type runState int

const (
	stateNew runState = iota
	stateRunning
	stateReady   // runnable, waiting in a queue
	stateBlocked // sleeping / waiting
	stateExited
)

// Task is a simulated LWP (thread).
type Task struct {
	TID  int
	Comm string
	Kind ThreadKind
	Proc *Process

	// Affinity is the allowed-CPU set; SetAffinity changes it at runtime
	// (the OpenMP runtime's binding, or a user retargeting the monitor).
	Affinity topology.CPUSet

	// WakePreempts marks interactive tasks (the ZeroSum monitor thread)
	// whose wakeups preempt a running task when no allowed CPU is idle,
	// as CFS wakeup preemption does for long-sleeping tasks.
	WakePreempts bool

	// Nice biases timeslice length (positive nice = shorter slices).
	Nice int

	behavior Behavior

	// Accounting, visible through /proc.
	UTime      sim.Time // user CPU
	STime      sim.Time // system CPU
	MinFlt     uint64
	MajFlt     uint64
	VCtx       uint64 // voluntary context switches
	NVCtx      uint64 // non-voluntary context switches
	Migrations uint64
	LastCPU    int
	StartTime  sim.Time
	Exited     bool
	ExitTime   sim.Time

	state      runState
	cpu        int // current CPU when stateRunning, else -1
	readySince sim.Time
	sliceUsed  sim.Time

	// Current action progress.
	cur      Action
	workLeft sim.Time
	fltCarry float64 // fractional minor faults carried between ticks

	wakeHandle sim.Handle
}

// State returns the /proc single-letter state code.
func (t *Task) State() proc.TaskState {
	switch t.state {
	case stateRunning, stateReady:
		return proc.StateRunning
	case stateBlocked:
		return proc.StateSleeping
	case stateExited:
		return proc.StateZombie
	default:
		return proc.StateSleeping
	}
}

// OnCPU reports the CPU the task is currently executing on, or -1.
func (t *Task) OnCPU() int {
	if t.state == stateRunning {
		return t.cpu
	}
	return -1
}

func (t *Task) String() string {
	return fmt.Sprintf("task %d (%s/%s)", t.TID, t.Comm, t.Kind)
}

// Barrier synchronises a fixed-size group of tasks; it is reusable
// (generation-counted), like an OpenMP barrier.
type Barrier struct {
	k       *Kernel
	N       int
	waiting []*Task
}

// Gate is a one-shot-per-wait wake-up channel: tasks block on it and
// Signal releases them. Used for GPU completions, MPI receives and joins.
type Gate struct {
	k       *Kernel
	waiting []*Task
	// Credits lets a Signal arrive before the waiter: the next Wait
	// consumes a credit without blocking.
	credits int
}

// Waiting returns how many tasks are currently blocked on the gate.
func (g *Gate) Waiting() int { return len(g.waiting) }
