package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"zerosum/internal/sim"
)

// Trace records which task ran on which hardware thread when, exportable in
// the Chrome trace-event format (chrome://tracing, Perfetto, Speedscope).
// Rows are hardware threads, slices are task residencies — the visual
// counterpart of the paper's Tables 1-3: an oversubscribed core shows a
// zebra pattern of sub-millisecond slices, a pinned run shows solid bars,
// and the ZeroSum thread's 1 Hz pinpricks are visible on its core.
type Trace struct {
	k      *Kernel
	open   map[int]openSlice
	events []traceEvent
	max    int
}

type openSlice struct {
	task  *Task
	start sim.Time
}

type traceEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TSUs  float64           `json:"ts"`
	DurUs float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// EnableTrace attaches a trace to the kernel; maxEvents caps memory (0
// means one million slices). Call before creating tasks.
func (k *Kernel) EnableTrace(maxEvents int) *Trace {
	if maxEvents <= 0 {
		maxEvents = 1_000_000
	}
	t := &Trace{k: k, open: map[int]openSlice{}, max: maxEvents}
	k.trace = t
	return t
}

// onStart records that task began running on cpu at now.
func (t *Trace) onStart(task *Task, cpu int, now sim.Time) {
	t.onStop(cpu, now)
	t.open[cpu] = openSlice{task: task, start: now}
}

// onStop closes the open slice on cpu, if any.
func (t *Trace) onStop(cpu int, now sim.Time) {
	os, ok := t.open[cpu]
	if !ok {
		return
	}
	delete(t.open, cpu)
	if len(t.events) >= t.max {
		return
	}
	t.events = append(t.events, traceEvent{
		Name:  fmt.Sprintf("%s/%d", os.task.Comm, os.task.TID),
		Phase: "X",
		TSUs:  float64(os.start) / 1000,
		DurUs: float64(now-os.start) / 1000,
		PID:   os.task.Proc.PID,
		TID:   cpu,
		Args: map[string]string{
			"kind": os.task.Kind.String(),
		},
	})
}

// Flush closes every open slice at the current simulated time.
func (t *Trace) Flush() {
	now := t.k.Now()
	for cpu := range t.open {
		t.onStop(cpu, now)
	}
}

// Len returns the recorded slice count.
func (t *Trace) Len() int { return len(t.events) }

// Truncated reports whether the event cap was hit.
func (t *Trace) Truncated() bool { return len(t.events) >= t.max }

// WriteChromeTrace emits the catapult JSON format. Rows (tid) are hardware
// threads; metadata events label them.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	t.Flush()
	type doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		Unit        string       `json:"displayTimeUnit"`
	}
	all := make([]traceEvent, 0, len(t.events)+len(t.k.cpuOrder))
	for _, cpu := range t.k.cpuOrder {
		all = append(all, traceEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   cpu,
			Args:  map[string]string{"name": fmt.Sprintf("CPU %d", cpu)},
		})
	}
	all = append(all, t.events...)
	enc := json.NewEncoder(w)
	return enc.Encode(doc{TraceEvents: all, Unit: "ms"})
}

// SliceCountFor returns how many residency slices a task accumulated — a
// direct view of its scheduling churn.
func (t *Trace) SliceCountFor(tid int) int {
	n := 0
	for _, ev := range t.events {
		if ev.TID >= 0 && ev.Name != "thread_name" {
			// Name is comm/tid; match on suffix.
			if suffixInt(ev.Name) == tid {
				n++
			}
		}
	}
	return n
}

func suffixInt(name string) int {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			v := 0
			for _, c := range name[i+1:] {
				if c < '0' || c > '9' {
					return -1
				}
				v = v*10 + int(c-'0')
			}
			return v
		}
	}
	return -1
}
