package sched

import (
	"encoding/json"
	"strings"
	"testing"

	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

func TestTraceRecordsSlices(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{Timeslice: 5 * sim.Millisecond})
	tr := k.EnableTrace(0)
	p := k.NewProcess("app", topology.NewCPUSet(0))
	a := k.NewTask(p, "alpha", Seq(Compute{Work: 30 * sim.Millisecond}))
	b := k.NewTask(p, "beta", Seq(Compute{Work: 30 * sim.Millisecond}))
	run(t, k)
	tr.Flush()
	if tr.Len() == 0 {
		t.Fatal("no slices recorded")
	}
	// Two tasks time-slicing one CPU: both must have multiple slices.
	if got := tr.SliceCountFor(a.TID); got < 2 {
		t.Fatalf("alpha slices = %d, want >= 2", got)
	}
	if got := tr.SliceCountFor(b.TID); got < 2 {
		t.Fatalf("beta slices = %d, want >= 2", got)
	}
	if tr.Truncated() {
		t.Fatal("tiny run should not truncate")
	}
}

func TestTraceChromeJSON(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{})
	tr := k.EnableTrace(0)
	p := k.NewProcess("app", topology.RangeCPUSet(0, 1))
	k.NewTask(p, "w", Seq(
		Compute{Work: 10 * sim.Millisecond},
		Sleep{D: 5 * sim.Millisecond},
		Compute{Work: 10 * sim.Millisecond},
	))
	run(t, k)
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("unit = %q", doc.Unit)
	}
	var slices, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if ev["dur"].(float64) < 0 {
				t.Fatal("negative duration")
			}
		case "M":
			meta++
		}
	}
	if slices < 2 {
		t.Fatalf("slices = %d, want >= 2 (sleep splits the residency)", slices)
	}
	if meta != m.NumPUs() {
		t.Fatalf("metadata rows = %d, want %d", meta, m.NumPUs())
	}
}

func TestTraceCap(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{Timeslice: sim.Millisecond})
	tr := k.EnableTrace(5)
	p := k.NewProcess("app", topology.NewCPUSet(0))
	for i := 0; i < 3; i++ {
		k.NewTask(p, "w", Seq(Compute{Work: 20 * sim.Millisecond}))
	}
	run(t, k)
	tr.Flush()
	if tr.Len() > 5 {
		t.Fatalf("cap ignored: %d events", tr.Len())
	}
	if !tr.Truncated() {
		t.Fatal("should report truncation")
	}
}

func TestTraceClosesOnBlockNotNextStart(t *testing.T) {
	// A task that blocks leaves the CPU idle; its slice must end at the
	// block time, not when the next task eventually starts.
	m := topology.Laptop4Core()
	var q sim.Queue
	k := NewKernel(m, &q, sim.NewRNG(1), Params{})
	tr := k.EnableTrace(0)
	p := k.NewProcess("app", topology.NewCPUSet(0))
	k.NewTask(p, "early", Seq(Compute{Work: 10 * sim.Millisecond}))
	// Second task starts long after the first exits.
	k.Q.After(500*sim.Millisecond, func(sim.Time) {
		k.NewTask(p, "late", Seq(Compute{Work: 10 * sim.Millisecond}))
	})
	run(t, k)
	tr.Flush()
	for _, ev := range tr.events {
		if strings.HasPrefix(ev.Name, "early/") && ev.DurUs > 15_000 {
			t.Fatalf("early task slice stretched into the idle gap: %v us", ev.DurUs)
		}
	}
}

func TestSuffixInt(t *testing.T) {
	if suffixInt("miniqmc/1234") != 1234 {
		t.Fatal("parse failed")
	}
	if suffixInt("no-slash") != -1 {
		t.Fatal("missing slash should be -1")
	}
	if suffixInt("x/12a") != -1 {
		t.Fatal("non-numeric should be -1")
	}
}
