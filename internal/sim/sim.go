// Package sim provides the discrete-event machinery underneath the kernel
// simulator: a nanosecond clock, a binary-heap event queue, and a
// deterministic SplitMix64/xoshiro random source. Everything here is
// single-threaded by design; the simulated node advances one event at a time
// so that every run with the same seed is bit-identical.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration (both are nanoseconds).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromSeconds converts seconds to simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Event is a scheduled callback. The sequence number breaks ties so that
// events scheduled earlier at the same timestamp fire first (stable order,
// required for determinism).
type event struct {
	at    Time
	seq   uint64
	fn    func(now Time)
	index int
	dead  bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Cancel removes the event from the queue if it has not fired yet.
// Cancelling an already-fired or already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

// Pending reports whether the event is still scheduled.
func (h Handle) Pending() bool { return h.ev != nil && !h.ev.dead && h.ev.index >= 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Queue is a discrete-event queue with a monotonically advancing clock.
// The zero value is ready to use.
type Queue struct {
	now  Time
	seq  uint64
	heap eventHeap
}

// Now returns the current simulated time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of scheduled (non-cancelled) events. Cancelled
// events still occupy queue slots until they surface, so this is an upper
// bound used mainly by tests.
func (q *Queue) Len() int { return len(q.heap) }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// that is always a simulator bug.
func (q *Queue) At(at Time, fn func(now Time)) Handle {
	if at < q.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, q.now))
	}
	ev := &event{at: at, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.heap, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d nanoseconds from now.
func (q *Queue) After(d Time, fn func(now Time)) Handle {
	if d < 0 {
		d = 0
	}
	return q.At(q.now+d, fn)
}

// Step fires the next event. It reports false when the queue is empty.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		ev := heap.Pop(&q.heap).(*event)
		if ev.dead {
			continue
		}
		q.now = ev.at
		ev.fn(q.now)
		return true
	}
	return false
}

// RunUntil fires events in order until the clock would pass the deadline or
// the queue drains. The clock is left at min(deadline, last event time).
func (q *Queue) RunUntil(deadline Time) {
	for len(q.heap) > 0 {
		// Peek.
		ev := q.heap[0]
		if ev.dead {
			heap.Pop(&q.heap)
			continue
		}
		if ev.at > deadline {
			break
		}
		heap.Pop(&q.heap)
		q.now = ev.at
		ev.fn(q.now)
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Run drains the queue completely, with a safety cap on event count to turn
// runaway self-rescheduling loops into a loud failure instead of a hang.
func (q *Queue) Run(maxEvents int) error {
	for i := 0; ; i++ {
		if i >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events at t=%v; runaway event loop?", maxEvents, q.now)
		}
		if !q.Step() {
			return nil
		}
	}
}

// RNG is a small, fast, deterministic random source (SplitMix64 core).
// It intentionally does not wrap math/rand so simulator results cannot be
// perturbed by stdlib algorithm changes.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and standard
// deviation (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Bool returns true with probability p (clamped to [0,1]); the draw always
// consumes exactly one value so schedules stay aligned across replays even
// when a fault class is disabled by setting its probability to zero.
func (r *RNG) Bool(p float64) bool {
	v := r.Float64()
	return p > 0 && v < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Fork derives an independent child generator; used to give each simulated
// task its own stream so adding a task never perturbs the others.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
