package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	var q Queue
	var fired []int
	q.At(30, func(Time) { fired = append(fired, 3) })
	q.At(10, func(Time) { fired = append(fired, 1) })
	q.At(20, func(Time) { fired = append(fired, 2) })
	if err := q.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired = %v", fired)
	}
	if q.Now() != 30 {
		t.Fatalf("clock = %v, want 30", q.Now())
	}
}

func TestQueueTieBreakFIFO(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func(Time) { fired = append(fired, i) })
	}
	if err := q.Run(100); err != nil {
		t.Fatal(err)
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", fired)
		}
	}
}

func TestQueuePastPanics(t *testing.T) {
	var q Queue
	q.At(10, func(Time) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	q.At(5, func(Time) {})
}

func TestAfterNegativeClamps(t *testing.T) {
	var q Queue
	ran := false
	q.After(-5, func(now Time) {
		if now != 0 {
			t.Errorf("now = %v, want 0", now)
		}
		ran = true
	})
	q.Step()
	if !ran {
		t.Fatal("event did not fire")
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	ran := false
	h := q.At(10, func(Time) { ran = true })
	if !h.Pending() {
		t.Fatal("handle should be pending")
	}
	h.Cancel()
	if h.Pending() {
		t.Fatal("cancelled handle should not be pending")
	}
	if err := q.Run(10); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event fired")
	}
	h.Cancel() // double cancel is fine
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		q.At(at, func(now Time) { fired = append(fired, now) })
	}
	q.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 15 only", fired)
	}
	if q.Now() != 20 {
		t.Fatalf("clock = %v, want 20 (advanced to deadline)", q.Now())
	}
	q.RunUntil(100)
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
}

func TestRunawayDetection(t *testing.T) {
	var q Queue
	var resched func(Time)
	resched = func(Time) { q.After(1, resched) }
	q.After(1, resched)
	if err := q.Run(1000); err == nil {
		t.Fatal("runaway loop should be detected")
	}
}

func TestEventCanScheduleEvents(t *testing.T) {
	var q Queue
	depth := 0
	q.At(1, func(now Time) {
		q.After(1, func(now Time) {
			depth = 2
			if now != 2 {
				t.Errorf("nested event at %v, want 2", now)
			}
		})
		depth = 1
	})
	if err := q.Run(10); err != nil {
		t.Fatal(err)
	}
	if depth != 2 {
		t.Fatal("nested event did not run")
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatal("FromSeconds wrong")
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v", got)
	}
	if (Second).Duration().Seconds() != 1.0 {
		t.Fatal("Duration conversion wrong")
	}
	if (1500 * Millisecond).String() != "1.500000s" {
		t.Fatalf("String = %q", (1500 * Millisecond).String())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) over 1000 draws hit %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("std = %v, want ~2", std)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(3)
		if v < 0 {
			t.Fatal("Exp returned negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.15 {
		t.Fatalf("mean = %v, want ~3", mean)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Fork()
	// Draw from the child; the parent's subsequent stream must be the same
	// as a fresh parent that also forked once (fork consumes exactly one
	// parent draw), regardless of how much the child is used.
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	p2 := NewRNG(1)
	p2.Fork()
	for i := 0; i < 50; i++ {
		if parent.Uint64() != p2.Uint64() {
			t.Fatal("child draws perturbed parent stream")
		}
	}
}

func TestQuickQueueFiresInOrder(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		var fired []Time
		for _, tt := range times {
			q.At(Time(tt), func(now Time) { fired = append(fired, now) })
		}
		if err := q.Run(len(times) + 1); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueue(b *testing.B) {
	b.ReportAllocs()
	var q Queue
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		q.After(Time(r.Intn(1000)), func(Time) {})
		q.Step()
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(21)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) fired %.3f of the time", frac)
	}
	// Degenerate probabilities never fire (and p=0 must still consume a
	// draw — fault-schedule alignment depends on it).
	a, b := NewRNG(5), NewRNG(5)
	if a.Bool(0) || a.Bool(-1) {
		t.Fatal("non-positive probability fired")
	}
	b.Float64()
	b.Float64()
	if a.Uint64() != b.Uint64() {
		t.Fatal("Bool(0) did not consume exactly one draw")
	}
}
