// Package slurm models the job-launcher behaviour the paper's experiments
// vary: translating srun-style flags (-n, -c, --threads-per-core,
// --gpus-per-task, --gpu-bind) into per-rank cpusets and GPU assignments on
// one or more nodes, honouring cores reserved for system processes (the
// "first core of each L3 region" on Frontier). Getting this mapping wrong
// is precisely the misconfiguration ZeroSum exists to expose.
package slurm

import (
	"fmt"

	"zerosum/internal/topology"
)

// GPUBind selects the GPU-assignment policy.
type GPUBind int

// GPU binding policies.
const (
	// GPUBindClosest assigns GPUs physically connected to the rank's NUMA
	// domain (srun --gpu-bind=closest).
	GPUBindClosest GPUBind = iota
	// GPUBindNone assigns GPUs round-robin regardless of locality.
	GPUBindNone
)

// Distribution selects how ranks' cpusets are carved from a node.
type Distribution int

// Rank-to-core distributions.
const (
	// DistCyclicL3 assigns rank r its cores from L3 region (r mod regions)
	// — Frontier's effective default, which gives `srun -n8 -c7` the
	// paper's rank-0 cpuset [1-7].
	DistCyclicL3 Distribution = iota
	// DistBlock packs ranks into consecutive cores.
	DistBlock
)

// Options mirrors the srun flags the paper's experiments use.
type Options struct {
	// NTasks is -n: the number of MPI ranks.
	NTasks int
	// CoresPerTask is -c in cores (0 means the Slurm default of 1).
	CoresPerTask int
	// ThreadsPerCore is --threads-per-core: how many HWTs of each core are
	// schedulable (0 means 1, the low-noise default in the paper's jobs).
	ThreadsPerCore int
	// GPUsPerTask is --gpus-per-task.
	GPUsPerTask int
	// GPUBind is --gpu-bind.
	GPUBind GPUBind
	// Dist selects the rank-to-core layout.
	Dist Distribution
	// UseReservedCores schedules onto reserved cores too (normally false:
	// facilities keep them for system daemons).
	UseReservedCores bool
}

// Assignment is the placement of one rank.
type Assignment struct {
	Rank int
	// Node indexes into the job's node list.
	Node int
	// CPUs is the rank's cpuset (what /proc/<pid>/status will report).
	CPUs topology.CPUSet
	// GPUs lists assigned devices by vendor-visible index.
	GPUs []int
}

// Plan computes rank placements for a job on count identical nodes
// described by m. Ranks fill nodes in blocks: ranks-per-node is the node's
// capacity under the options.
func Plan(m *topology.Machine, nodes int, opt Options) ([]Assignment, error) {
	if opt.NTasks <= 0 {
		return nil, fmt.Errorf("slurm: -n must be positive, got %d", opt.NTasks)
	}
	if nodes <= 0 {
		nodes = 1
	}
	cores := opt.CoresPerTask
	if cores == 0 {
		cores = 1
	}
	if cores < 0 {
		return nil, fmt.Errorf("slurm: -c must be positive, got %d", cores)
	}
	tpc := opt.ThreadsPerCore
	if tpc == 0 {
		tpc = 1
	}
	maxTPC := 0
	for _, c := range m.Cores() {
		if len(c.PUs) > maxTPC {
			maxTPC = len(c.PUs)
		}
	}
	if tpc < 0 || tpc > maxTPC {
		return nil, fmt.Errorf("slurm: --threads-per-core=%d out of range [1,%d]", tpc, maxTPC)
	}

	regions := usableRegions(m, opt.UseReservedCores)
	usableCores := 0
	for _, r := range regions {
		usableCores += len(r)
	}
	if usableCores == 0 {
		return nil, fmt.Errorf("slurm: node has no usable cores")
	}
	perNode := usableCores / cores
	if perNode == 0 {
		return nil, fmt.Errorf("slurm: -c%d exceeds the node's %d usable cores", cores, usableCores)
	}
	if opt.NTasks > perNode*nodes {
		return nil, fmt.Errorf("slurm: %d tasks need %d nodes (%d tasks/node), only %d given",
			opt.NTasks, (opt.NTasks+perNode-1)/perNode, perNode, nodes)
	}

	gpuTracker := make([]map[int]bool, nodes) // node -> assigned vendor idx
	for i := range gpuTracker {
		gpuTracker[i] = map[int]bool{}
	}

	out := make([]Assignment, 0, opt.NTasks)
	for rank := 0; rank < opt.NTasks; rank++ {
		node := rank / perNode
		local := rank % perNode
		coreList, err := coresForRank(regions, local, cores, opt.Dist)
		if err != nil {
			return nil, fmt.Errorf("slurm: rank %d: %w", rank, err)
		}
		var cpus topology.CPUSet
		for _, c := range coreList {
			for i, pu := range c.PUs {
				if i >= tpc {
					break
				}
				cpus.Set(pu.OSIndex)
			}
		}
		a := Assignment{Rank: rank, Node: node, CPUs: cpus}
		if opt.GPUsPerTask > 0 {
			gpus, err := assignGPUs(m, cpus, opt.GPUsPerTask, opt.GPUBind, gpuTracker[node])
			if err != nil {
				return nil, fmt.Errorf("slurm: rank %d: %w", rank, err)
			}
			a.GPUs = gpus
		}
		out = append(out, a)
	}
	return out, nil
}

// usableRegions groups a node's schedulable cores by L3 region, in tree
// order.
func usableRegions(m *topology.Machine, useReserved bool) [][]*topology.Core {
	var regions [][]*topology.Core
	for _, pkg := range m.Packages {
		for _, nn := range pkg.NUMA {
			for _, g := range nn.L3 {
				var cs []*topology.Core
				for _, c := range g.Cores {
					if c.Reserved && !useReserved {
						continue
					}
					cs = append(cs, c)
				}
				if len(cs) > 0 {
					regions = append(regions, cs)
				}
			}
		}
	}
	return regions
}

// coresForRank picks the rank's cores under the distribution policy.
func coresForRank(regions [][]*topology.Core, local, cores int, dist Distribution) ([]*topology.Core, error) {
	switch dist {
	case DistBlock:
		flat := flatten(regions)
		lo := local * cores
		if lo+cores > len(flat) {
			return nil, fmt.Errorf("not enough cores for local rank %d", local)
		}
		return flat[lo : lo+cores], nil
	case DistCyclicL3:
		nr := len(regions)
		start := local % nr
		round := local / nr
		// Take cores from the home region first, spilling forward.
		var picked []*topology.Core
		offset := round * cores
		for ri := 0; len(picked) < cores && ri < nr; ri++ {
			region := regions[(start+ri)%nr]
			for i := offset; i < len(region) && len(picked) < cores; i++ {
				picked = append(picked, region[i])
			}
			offset = 0 // spill regions start from their beginning
		}
		if len(picked) < cores {
			return nil, fmt.Errorf("not enough cores for local rank %d", local)
		}
		return picked, nil
	}
	return nil, fmt.Errorf("unknown distribution %d", dist)
}

func flatten(regions [][]*topology.Core) []*topology.Core {
	var out []*topology.Core
	for _, r := range regions {
		out = append(out, r...)
	}
	return out
}

// assignGPUs picks n devices for a rank.
func assignGPUs(m *topology.Machine, cpus topology.CPUSet, n int, bind GPUBind, taken map[int]bool) ([]int, error) {
	var candidates []int
	switch bind {
	case GPUBindClosest:
		candidates = m.ClosestGPUs(cpus)
		// Fall back to remote devices only after local ones are taken.
		for _, g := range m.GPUs {
			candidates = appendUnique(candidates, g.VendorIndex)
		}
	case GPUBindNone:
		for _, g := range m.GPUs {
			candidates = append(candidates, g.VendorIndex)
		}
	}
	var out []int
	for _, idx := range candidates {
		if len(out) == n {
			break
		}
		if !taken[idx] {
			taken[idx] = true
			out = append(out, idx)
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("needed %d GPUs, node has only %d unassigned", n, len(out))
	}
	return out, nil
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// CommandLine renders the equivalent srun invocation, for logs and reports.
func (o Options) CommandLine(app string) string {
	s := fmt.Sprintf("srun -n%d", o.NTasks)
	if o.CoresPerTask > 0 {
		s += fmt.Sprintf(" -c%d", o.CoresPerTask)
	}
	if o.ThreadsPerCore > 0 {
		s += fmt.Sprintf(" --threads-per-core=%d", o.ThreadsPerCore)
	}
	if o.GPUsPerTask > 0 {
		s += fmt.Sprintf(" --gpus-per-task=%d", o.GPUsPerTask)
		if o.GPUBind == GPUBindClosest {
			s += " --gpu-bind=closest"
		}
	}
	return s + " " + app
}
