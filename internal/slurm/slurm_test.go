package slurm

import (
	"strings"
	"testing"

	"zerosum/internal/topology"
)

func TestPlanFrontierDefault(t *testing.T) {
	// `srun -n8 miniqmc` (Table 1): each rank gets one core, rank r in L3
	// region r, so rank 0 is pinned to core 1 (core 0 reserved).
	m := topology.Frontier()
	as, err := Plan(m, 1, Options{NTasks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 8 {
		t.Fatalf("assignments = %d", len(as))
	}
	for r, a := range as {
		wantCore := 8*r + 1
		if a.CPUs.String() != topology.NewCPUSet(wantCore).String() {
			t.Fatalf("rank %d cpus = %s, want %d", r, a.CPUs, wantCore)
		}
		if a.Node != 0 {
			t.Fatalf("rank %d node = %d", r, a.Node)
		}
		if len(a.GPUs) != 0 {
			t.Fatalf("no GPUs requested but rank %d got %v", r, a.GPUs)
		}
	}
}

func TestPlanFrontierC7(t *testing.T) {
	// `srun -n8 -c7` (Table 2/3): rank 0 gets cores 1-7 of L3 region 0.
	m := topology.Frontier()
	as, err := Plan(m, 1, Options{NTasks: 8, CoresPerTask: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := as[0].CPUs.String(); got != "1-7" {
		t.Fatalf("rank 0 cpus = %s, want 1-7 (the paper's Listing 2)", got)
	}
	if got := as[3].CPUs.String(); got != "25-31" {
		t.Fatalf("rank 3 cpus = %s, want 25-31", got)
	}
	// No overlap between ranks.
	for i := range as {
		for j := i + 1; j < len(as); j++ {
			if as[i].CPUs.Overlaps(as[j].CPUs) {
				t.Fatalf("ranks %d and %d overlap: %s vs %s", i, j, as[i].CPUs, as[j].CPUs)
			}
		}
	}
}

func TestPlanThreadsPerCore2(t *testing.T) {
	// The overhead experiment's second scenario: two HWTs per core.
	m := topology.Frontier()
	as, err := Plan(m, 1, Options{NTasks: 8, CoresPerTask: 7, ThreadsPerCore: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := topology.RangeCPUSet(1, 7).Or(topology.RangeCPUSet(65, 71))
	if !as[0].CPUs.Equal(want) {
		t.Fatalf("rank 0 cpus = %s, want %s", as[0].CPUs, want)
	}
}

func TestPlanGPUBindClosest(t *testing.T) {
	// `srun -n8 -c7 --gpus-per-task=1 --gpu-bind=closest` (Listing 2):
	// ranks 0,1 sit in NUMA 0 whose local GCDs are 4 and 5; rank 0 must
	// see visible GCD 4 — the paper's "true index 4" for HIP device 0.
	m := topology.Frontier()
	as, err := Plan(m, 1, Options{NTasks: 8, CoresPerTask: 7, GPUsPerTask: 1, GPUBind: GPUBindClosest})
	if err != nil {
		t.Fatal(err)
	}
	wantGPU := []int{4, 5, 2, 3, 6, 7, 0, 1}
	for r, a := range as {
		if len(a.GPUs) != 1 || a.GPUs[0] != wantGPU[r] {
			t.Fatalf("rank %d GPUs = %v, want [%d]", r, a.GPUs, wantGPU[r])
		}
	}
}

func TestPlanGPUExhaustion(t *testing.T) {
	m := topology.Frontier()
	if _, err := Plan(m, 1, Options{NTasks: 8, CoresPerTask: 7, GPUsPerTask: 2}); err == nil {
		t.Fatal("16 GPUs requested on an 8-GCD node should fail")
	}
}

func TestPlanMultiNode(t *testing.T) {
	// 512 ranks at 8 ranks/node (c7) = 64 nodes: the Figure 5 job shape.
	m := topology.Frontier()
	as, err := Plan(m, 64, Options{NTasks: 512, CoresPerTask: 7})
	if err != nil {
		t.Fatal(err)
	}
	if as[7].Node != 0 || as[8].Node != 1 || as[511].Node != 63 {
		t.Fatalf("node packing wrong: %d %d %d", as[7].Node, as[8].Node, as[511].Node)
	}
	// Local cpusets repeat per node.
	if !as[8].CPUs.Equal(as[0].CPUs) {
		t.Fatalf("rank 8 (node 1) cpus = %s, want %s", as[8].CPUs, as[0].CPUs)
	}
}

func TestPlanCapacityErrors(t *testing.T) {
	m := topology.Frontier()
	if _, err := Plan(m, 1, Options{NTasks: 0}); err == nil {
		t.Fatal("zero tasks should fail")
	}
	if _, err := Plan(m, 1, Options{NTasks: 9, CoresPerTask: 7}); err == nil {
		t.Fatal("9 ranks x 7 cores on 56 usable cores should fail")
	}
	if _, err := Plan(m, 1, Options{NTasks: 1, CoresPerTask: 100}); err == nil {
		t.Fatal("-c100 should fail")
	}
	if _, err := Plan(m, 1, Options{NTasks: 1, ThreadsPerCore: 5}); err == nil {
		t.Fatal("--threads-per-core=5 should fail on 2-HWT cores")
	}
	if _, err := Plan(m, 1, Options{NTasks: 1, CoresPerTask: -3}); err == nil {
		t.Fatal("negative -c should fail")
	}
}

func TestPlanUseReservedCores(t *testing.T) {
	m := topology.Frontier()
	as, err := Plan(m, 1, Options{NTasks: 8, CoresPerTask: 8, UseReservedCores: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := as[0].CPUs.String(); got != "0-7" {
		t.Fatalf("rank 0 cpus = %s, want 0-7 with reserved cores allowed", got)
	}
}

func TestPlanBlockDistribution(t *testing.T) {
	m := topology.Frontier()
	as, err := Plan(m, 1, Options{NTasks: 4, CoresPerTask: 2, Dist: DistBlock})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].CPUs.String() != "1-2" || as[1].CPUs.String() != "3-4" {
		t.Fatalf("block layout wrong: %s, %s", as[0].CPUs, as[1].CPUs)
	}
}

func TestPlanCyclicSecondRound(t *testing.T) {
	// More ranks than L3 regions wrap to a second round within regions.
	m := topology.Frontier()
	as, err := Plan(m, 1, Options{NTasks: 16, CoresPerTask: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 8 (round 1, region 0) starts after rank 0's 3 cores: 4-6.
	if got := as[8].CPUs.String(); got != "4-6" {
		t.Fatalf("rank 8 cpus = %s, want 4-6", got)
	}
	for i := range as {
		for j := i + 1; j < len(as); j++ {
			if as[i].CPUs.Overlaps(as[j].CPUs) {
				t.Fatalf("ranks %d/%d overlap", i, j)
			}
		}
	}
}

func TestCommandLine(t *testing.T) {
	o := Options{NTasks: 8, CoresPerTask: 7, GPUsPerTask: 1, GPUBind: GPUBindClosest, ThreadsPerCore: 1}
	got := o.CommandLine("miniqmc")
	for _, want := range []string{"srun -n8", "-c7", "--gpus-per-task=1", "--gpu-bind=closest", "miniqmc"} {
		if !strings.Contains(got, want) {
			t.Fatalf("command %q missing %q", got, want)
		}
	}
}

func TestPlanLaptopSmoke(t *testing.T) {
	m := topology.Laptop4Core()
	as, err := Plan(m, 1, Options{NTasks: 2, CoresPerTask: 2, ThreadsPerCore: 2})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].CPUs.Count() != 4 {
		t.Fatalf("rank 0 pus = %d, want 4 (2 cores x 2 HWT)", as[0].CPUs.Count())
	}
}
