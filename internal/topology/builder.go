package topology

import "fmt"

// Spec describes a homogeneous machine for Build. All counts are per parent
// (NUMAPerPackage NUMA domains in each package, and so on).
type Spec struct {
	Name     string
	Hostname string
	MemBytes uint64

	Packages       int
	NUMAPerPackage int
	L3PerNUMA      int
	CoresPerL3     int
	ThreadsPerCore int

	L3Bytes uint64
	L2Bytes uint64
	L1Bytes uint64

	// NUMABandwidth caps per-domain memory traffic (bytes/sec) for the
	// kernel simulator's contention model. Zero means "unlimited".
	NUMABandwidth float64

	// ReserveFirstCorePerL3 marks the first core of every L3 region as
	// reserved for system processes (Frontier's low-noise default).
	ReserveFirstCorePerL3 bool

	// SecondThreadOffset controls PU OS numbering: hardware thread t of
	// core c gets OS index c + t*SecondThreadOffset. If zero, it defaults
	// to the total core count (the Linux convention on EPYC/Frontier: core
	// c has PUs c and c+64). The paper's laptop uses 4 (PU P#0/P#4 pair).
	SecondThreadOffset int

	// GPUs optionally attaches devices; see GPUSpec.
	GPUs []GPUSpec
}

// GPUSpec describes one accelerator for Spec.
type GPUSpec struct {
	VendorIndex int
	PhysIndex   int
	NUMAIndex   int
	Model       string
	MemBytes    uint64
	GTTBytes    uint64
	PeakMHz     float64
	BaseMHz     float64
	TDPWatts    float64
}

// Build constructs a Machine from a Spec. Core OS indexes are assigned
// sequentially in tree order; PU OS indexes follow SecondThreadOffset.
func Build(spec Spec) (*Machine, error) {
	if spec.Packages <= 0 || spec.NUMAPerPackage <= 0 || spec.L3PerNUMA <= 0 ||
		spec.CoresPerL3 <= 0 || spec.ThreadsPerCore <= 0 {
		return nil, fmt.Errorf("topology: spec counts must be positive: %+v", spec)
	}
	totalCores := spec.Packages * spec.NUMAPerPackage * spec.L3PerNUMA * spec.CoresPerL3
	offset := spec.SecondThreadOffset
	if offset == 0 {
		offset = totalCores
	}
	m := &Machine{
		Name:     spec.Name,
		Hostname: spec.Hostname,
		MemBytes: spec.MemBytes,
	}
	if m.Hostname == "" {
		m.Hostname = spec.Name
	}
	numaMem := spec.MemBytes / uint64(spec.Packages*spec.NUMAPerPackage)
	coreIdx := 0
	numaIdx := 0
	for p := 0; p < spec.Packages; p++ {
		pkg := &Package{OSIndex: p}
		for n := 0; n < spec.NUMAPerPackage; n++ {
			nn := &NUMANode{
				OSIndex:              numaIdx,
				MemBytes:             numaMem,
				BandwidthBytesPerSec: spec.NUMABandwidth,
			}
			numaIdx++
			for l := 0; l < spec.L3PerNUMA; l++ {
				grp := &CacheGroup{L3Bytes: spec.L3Bytes}
				for c := 0; c < spec.CoresPerL3; c++ {
					core := &Core{
						OSIndex: coreIdx,
						L2Bytes: spec.L2Bytes,
						L1Bytes: spec.L1Bytes,
					}
					if spec.ReserveFirstCorePerL3 && c == 0 {
						core.Reserved = true
					}
					for t := 0; t < spec.ThreadsPerCore; t++ {
						core.PUs = append(core.PUs, &PU{OSIndex: coreIdx + t*offset})
					}
					coreIdx++
					grp.Cores = append(grp.Cores, core)
				}
				nn.L3 = append(nn.L3, grp)
			}
			pkg.NUMA = append(pkg.NUMA, nn)
		}
		m.Packages = append(m.Packages, pkg)
	}
	for _, gs := range spec.GPUs {
		m.GPUs = append(m.GPUs, &GPU{
			VendorIndex:  gs.VendorIndex,
			PhysIndex:    gs.PhysIndex,
			NUMAIndex:    gs.NUMAIndex,
			Model:        gs.Model,
			MemBytes:     gs.MemBytes,
			GTTBytes:     gs.GTTBytes,
			PeakClockMHz: gs.PeakMHz,
			BaseClockMHz: gs.BaseMHz,
			TDPWatts:     gs.TDPWatts,
		})
	}
	if err := m.finalize(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustBuild is Build that panics on error; for package presets and tests.
func MustBuild(spec Spec) *Machine {
	m, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return m
}
