// Package topology models the hardware of a heterogeneous HPC compute node:
// packages, NUMA domains, cache regions, cores, hardware threads (PUs) and
// GPUs, in the style of the Portable Hardware Locality (hwloc) library the
// paper relies on. It also provides CPUSet, the affinity-mask type used
// throughout the kernel simulator and the monitor.
package topology

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// CPUSet is a set of hardware-thread (PU) OS indexes, equivalent to the
// kernel's cpumask / cpuset. The zero value is the empty set.
type CPUSet struct {
	words []uint64
}

// NewCPUSet returns a set containing the given PU indexes.
func NewCPUSet(pus ...int) CPUSet {
	var s CPUSet
	for _, p := range pus {
		s.Set(p)
	}
	return s
}

// RangeCPUSet returns the set {lo, lo+1, ..., hi} (inclusive).
// It panics if lo > hi or lo < 0.
func RangeCPUSet(lo, hi int) CPUSet {
	if lo < 0 || lo > hi {
		panic(fmt.Sprintf("topology: invalid cpu range [%d,%d]", lo, hi))
	}
	var s CPUSet
	for p := lo; p <= hi; p++ {
		s.Set(p)
	}
	return s
}

func (s *CPUSet) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Set adds PU index p to the set. Negative indexes panic.
func (s *CPUSet) Set(p int) {
	if p < 0 {
		panic("topology: negative PU index")
	}
	s.grow(p / 64)
	s.words[p/64] |= 1 << uint(p%64)
}

// Clear removes PU index p from the set.
func (s *CPUSet) Clear(p int) {
	if p < 0 || p/64 >= len(s.words) {
		return
	}
	s.words[p/64] &^= 1 << uint(p%64)
}

// Contains reports whether PU index p is in the set.
func (s CPUSet) Contains(p int) bool {
	if p < 0 || p/64 >= len(s.words) {
		return false
	}
	return s.words[p/64]&(1<<uint(p%64)) != 0
}

// Count returns the number of PUs in the set.
func (s CPUSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set contains no PUs.
func (s CPUSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// List returns the PU indexes in ascending order.
func (s CPUSet) List() []int {
	var out []int
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// First returns the lowest PU index in the set, or -1 if empty.
func (s CPUSet) First() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Last returns the highest PU index in the set, or -1 if empty.
func (s CPUSet) Last() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*64 + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Clone returns an independent copy of the set.
func (s CPUSet) Clone() CPUSet {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return CPUSet{words: w}
}

// Or returns the union of s and t.
func (s CPUSet) Or(t CPUSet) CPUSet {
	out := s.Clone()
	out.grow(len(t.words) - 1)
	for i, w := range t.words {
		out.words[i] |= w
	}
	return out
}

// And returns the intersection of s and t.
func (s CPUSet) And(t CPUSet) CPUSet {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	w := make([]uint64, n)
	for i := 0; i < n; i++ {
		w[i] = s.words[i] & t.words[i]
	}
	return CPUSet{words: w}
}

// AndNot returns the set difference s \ t.
func (s CPUSet) AndNot(t CPUSet) CPUSet {
	out := s.Clone()
	n := len(out.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		out.words[i] &^= t.words[i]
	}
	return out
}

// Equal reports whether s and t contain exactly the same PUs.
func (s CPUSet) Equal(t CPUSet) bool {
	a, b := s.words, t.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	for i := len(b); i < len(a); i++ {
		if a[i] != 0 {
			return false
		}
	}
	return true
}

// Overlaps reports whether s and t share at least one PU.
func (s CPUSet) Overlaps(t CPUSet) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// String renders the set in the Linux cpu-list format used by
// /proc/<pid>/status Cpus_allowed_list, e.g. "1-7,9-15,17". The empty set
// renders as "".
func (s CPUSet) String() string {
	list := s.List()
	if len(list) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(list); {
		j := i
		for j+1 < len(list) && list[j+1] == list[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&b, "%d", list[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", list[i], list[j])
		}
		i = j + 1
	}
	return b.String()
}

// MarshalText encodes the set in cpu-list format so CPUSet fields survive
// JSON/text serialization (the aggd wire layer ships core.Snapshot as JSON).
func (s CPUSet) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// UnmarshalText parses the cpu-list format written by MarshalText.
func (s *CPUSet) UnmarshalText(text []byte) error {
	parsed, err := ParseCPUList(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// HexMask renders the set in the Linux comma-grouped hexadecimal mask format
// used by /proc/<pid>/status Cpus_allowed, e.g. "ff" or "ffffffff,fffffffe".
// Groups of 32 bits are comma separated, most significant first.
func (s CPUSet) HexMask() string {
	last := s.Last()
	if last < 0 {
		return "0"
	}
	ngroups := last/32 + 1
	groups := make([]uint32, ngroups)
	for _, p := range s.List() {
		groups[p/32] |= 1 << uint(p%32)
	}
	var b strings.Builder
	for g := ngroups - 1; g >= 0; g-- {
		if b.Len() == 0 {
			fmt.Fprintf(&b, "%x", groups[g])
		} else {
			fmt.Fprintf(&b, ",%08x", groups[g])
		}
	}
	return b.String()
}

// ParseCPUList parses the Linux cpu-list format ("1-7,9,12-15"). Whitespace
// around entries is tolerated. An empty string yields the empty set.
func ParseCPUList(text string) (CPUSet, error) {
	var s CPUSet
	if err := ParseCPUListInto([]byte(text), &s); err != nil {
		return CPUSet{}, err
	}
	return s, nil
}

// ParseHexMask parses the Linux comma-grouped hex mask format
// ("ffffffff,fffffffe" or "ff").
func ParseHexMask(text string) (CPUSet, error) {
	var s CPUSet
	if err := ParseHexMaskInto([]byte(text), &s); err != nil {
		return CPUSet{}, err
	}
	return s, nil
}

// SortCPUSets orders sets by their first element (empty sets last); used by
// reports that list per-thread affinity deterministically.
func SortCPUSets(sets []CPUSet) {
	sort.SliceStable(sets, func(i, j int) bool {
		fi, fj := sets[i].First(), sets[j].First()
		if fi < 0 {
			return false
		}
		if fj < 0 {
			return true
		}
		return fi < fj
	})
}
