package topology

import (
	"bytes"
	"fmt"
)

// In-place CPUSet operations and byte-slice parsers for the monitor's
// sampling hot path: a thread's Cpus_allowed_list is re-parsed every tick,
// so the parse must reuse the set's word storage instead of growing a fresh
// slice per sample.

// Reset empties the set in place, keeping its word storage for reuse.
func (s *CPUSet) Reset() {
	clear(s.words)
}

// CopyFrom makes s an exact copy of t, reusing s's word storage when it is
// large enough.
func (s *CPUSet) CopyFrom(t CPUSet) {
	if cap(s.words) < len(t.words) {
		s.words = make([]uint64, len(t.words))
	}
	s.words = s.words[:len(t.words)]
	copy(s.words, t.words)
}

// OrWith adds every PU of t to s in place (s |= t).
func (s *CPUSet) OrWith(t CPUSet) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func trimBytes(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func atoiBytes(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// ParseCPUListInto parses the Linux cpu-list format ("1-7,9,12-15") into s,
// resetting it first and reusing its storage. Whitespace around entries is
// tolerated; empty input yields the empty set.
//
//zerosum:hotpath
func ParseCPUListInto(b []byte, s *CPUSet) error {
	s.Reset()
	b = trimBytes(b)
	for len(b) > 0 {
		part := b
		if i := bytes.IndexByte(b, ','); i >= 0 {
			part, b = b[:i], b[i+1:]
		} else {
			b = nil
		}
		part = trimBytes(part)
		if len(part) == 0 {
			continue
		}
		lo, hi := part, part
		if i := bytes.IndexByte(part, '-'); i >= 0 {
			lo, hi = trimBytes(part[:i]), trimBytes(part[i+1:])
		}
		l, ok := atoiBytes(lo)
		if !ok {
			return fmt.Errorf("topology: bad cpu list entry %q", part)
		}
		h, ok := atoiBytes(hi)
		if !ok {
			return fmt.Errorf("topology: bad cpu list entry %q", part)
		}
		if l > h {
			return fmt.Errorf("topology: bad cpu range %q", part)
		}
		for p := l; p <= h; p++ {
			s.Set(p)
		}
	}
	return nil
}

// ParseHexMaskInto parses the Linux comma-grouped hex mask format
// ("ffffffff,fffffffe" or "ff") into s, resetting it first.
//
//zerosum:hotpath
func ParseHexMaskInto(b []byte, s *CPUSet) error {
	s.Reset()
	b = trimBytes(b)
	if len(b) == 0 {
		return fmt.Errorf("topology: empty cpu mask")
	}
	// Count groups so the first (most significant) group's bit base is known
	// before any bits are set.
	ngroups := 1
	for _, c := range b {
		if c == ',' {
			ngroups++
		}
	}
	g := 0
	for len(b) > 0 {
		part := b
		if i := bytes.IndexByte(b, ','); i >= 0 {
			part, b = b[:i], b[i+1:]
		} else {
			b = nil
		}
		part = trimBytes(part)
		var v uint64
		if len(part) == 0 || len(part) > 16 {
			return fmt.Errorf("topology: bad cpu mask group %q", part)
		}
		for _, c := range part {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return fmt.Errorf("topology: bad cpu mask group %q", part)
			}
			v = v<<4 | d
		}
		base := (ngroups - 1 - g) * 32
		for bit := 0; bit < 64 && v != 0; bit++ {
			if v&(1<<uint(bit)) != 0 {
				s.Set(base + bit)
				v &^= 1 << uint(bit)
			}
		}
		g++
	}
	return nil
}
