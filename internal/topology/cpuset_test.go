package topology

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCPUSetBasics(t *testing.T) {
	var s CPUSet
	if !s.Empty() {
		t.Fatal("zero CPUSet should be empty")
	}
	if s.Count() != 0 || s.First() != -1 || s.Last() != -1 {
		t.Fatalf("empty set invariants violated: count=%d first=%d last=%d", s.Count(), s.First(), s.Last())
	}
	s.Set(3)
	s.Set(70)
	s.Set(3) // idempotent
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if !s.Contains(3) || !s.Contains(70) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if s.First() != 3 || s.Last() != 70 {
		t.Fatalf("First/Last = %d/%d, want 3/70", s.First(), s.Last())
	}
	s.Clear(3)
	if s.Contains(3) || s.Count() != 1 {
		t.Fatal("Clear failed")
	}
	s.Clear(1000) // out of range: no-op
	if s.Count() != 1 {
		t.Fatal("Clear out of range changed the set")
	}
}

func TestCPUSetSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) should panic")
		}
	}()
	var s CPUSet
	s.Set(-1)
}

func TestRangeCPUSet(t *testing.T) {
	s := RangeCPUSet(1, 7)
	if got := s.String(); got != "1-7" {
		t.Fatalf("String = %q, want 1-7", got)
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
	one := RangeCPUSet(5, 5)
	if one.String() != "5" {
		t.Fatalf("singleton String = %q", one.String())
	}
}

func TestRangeCPUSetInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RangeCPUSet(3,1) should panic")
		}
	}()
	RangeCPUSet(3, 1)
}

func TestCPUSetStringFrontierStyle(t *testing.T) {
	// The "Other" thread affinity in Listing 2: all PUs except every
	// multiple of 8 in 0..127.
	var s CPUSet
	for p := 0; p < 128; p++ {
		if p%8 != 0 {
			s.Set(p)
		}
	}
	want := "1-7,9-15,17-23,25-31,33-39,41-47,49-55,57-63,65-71,73-79,81-87,89-95,97-103,105-111,113-119,121-127"
	if got := s.String(); got != want {
		t.Fatalf("String =\n%s\nwant\n%s", got, want)
	}
	parsed, err := ParseCPUList(want)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(s) {
		t.Fatal("round trip failed")
	}
}

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"0", []int{0}, true},
		{"1-3", []int{1, 2, 3}, true},
		{"1-3,7,9-10", []int{1, 2, 3, 7, 9, 10}, true},
		{" 1 - 3 , 7 ", []int{1, 2, 3, 7}, true},
		{"1-3,,7", []int{1, 2, 3, 7}, true}, // tolerate empty entries
		{"3-1", nil, false},
		{"x", nil, false},
		{"1-x", nil, false},
		{"-2-1", nil, false},
	}
	for _, c := range cases {
		s, err := ParseCPUList(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseCPUList(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if err == nil && !reflect.DeepEqual(s.List(), c.want) {
			t.Errorf("ParseCPUList(%q) = %v, want %v", c.in, s.List(), c.want)
		}
	}
}

func TestHexMask(t *testing.T) {
	s := NewCPUSet(0, 1, 2, 3, 4, 5, 6, 7)
	if got := s.HexMask(); got != "ff" {
		t.Fatalf("HexMask = %q, want ff", got)
	}
	var big CPUSet
	for p := 1; p < 64; p++ {
		big.Set(p)
	}
	if got := big.HexMask(); got != "ffffffff,fffffffe" {
		t.Fatalf("HexMask = %q, want ffffffff,fffffffe", got)
	}
	var empty CPUSet
	if got := empty.HexMask(); got != "0" {
		t.Fatalf("empty HexMask = %q, want 0", got)
	}
}

func TestParseHexMask(t *testing.T) {
	s, err := ParseHexMask("ffffffff,fffffffe")
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 63 || s.Contains(0) || !s.Contains(63) {
		t.Fatalf("parsed mask wrong: %s", s.String())
	}
	if _, err := ParseHexMask(""); err == nil {
		t.Fatal("empty mask should fail")
	}
	if _, err := ParseHexMask("zz"); err == nil {
		t.Fatal("bad hex should fail")
	}
}

func TestCPUSetAlgebra(t *testing.T) {
	a := NewCPUSet(1, 2, 3, 64)
	b := NewCPUSet(3, 4, 64, 100)
	if got := a.And(b).List(); !reflect.DeepEqual(got, []int{3, 64}) {
		t.Fatalf("And = %v", got)
	}
	if got := a.Or(b).List(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 64, 100}) {
		t.Fatalf("Or = %v", got)
	}
	if got := a.AndNot(b).List(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("AndNot = %v", got)
	}
	if !a.Overlaps(b) {
		t.Fatal("Overlaps should be true")
	}
	if a.Overlaps(NewCPUSet(9)) {
		t.Fatal("Overlaps should be false")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone should be equal")
	}
	// Equal across different word lengths.
	short := NewCPUSet(1)
	long := NewCPUSet(1)
	long.Set(200)
	long.Clear(200)
	if !short.Equal(long) || !long.Equal(short) {
		t.Fatal("Equal should ignore trailing zero words")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := NewCPUSet(1, 2)
	b := a.Clone()
	b.Set(3)
	if a.Contains(3) {
		t.Fatal("mutating clone affected original")
	}
}

// quickSet builds a CPUSet plus a reference map from fuzz input.
func quickSet(idxs []uint16) (CPUSet, map[int]bool) {
	var s CPUSet
	ref := map[int]bool{}
	for _, i := range idxs {
		p := int(i % 512)
		s.Set(p)
		ref[p] = true
	}
	return s, ref
}

func TestQuickCPUSetStringRoundTrip(t *testing.T) {
	f := func(idxs []uint16) bool {
		s, _ := quickSet(idxs)
		parsed, err := ParseCPUList(s.String())
		return err == nil && parsed.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCPUSetHexRoundTrip(t *testing.T) {
	f := func(idxs []uint16) bool {
		s, _ := quickSet(idxs)
		if s.Empty() {
			return true
		}
		parsed, err := ParseHexMask(s.HexMask())
		return err == nil && parsed.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCPUSetAlgebraLaws(t *testing.T) {
	f := func(xa, xb []uint16) bool {
		a, _ := quickSet(xa)
		b, _ := quickSet(xb)
		union := a.Or(b)
		inter := a.And(b)
		diff := a.AndNot(b)
		// |A∪B| = |A| + |B| - |A∩B|
		if union.Count() != a.Count()+b.Count()-inter.Count() {
			return false
		}
		// A\B and A∩B partition A.
		if diff.Count()+inter.Count() != a.Count() {
			return false
		}
		// De Morgan-ish: (A∪B)\B == A\B
		if !union.AndNot(b).Equal(diff) {
			return false
		}
		// Overlap consistency.
		if a.Overlaps(b) != !inter.Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesReference(t *testing.T) {
	f := func(idxs []uint16) bool {
		s, ref := quickSet(idxs)
		if s.Count() != len(ref) {
			return false
		}
		for p := range ref {
			if !s.Contains(p) {
				return false
			}
		}
		list := s.List()
		for i := 1; i < len(list); i++ {
			if list[i] <= list[i-1] {
				return false // List must be strictly ascending
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCPUSetString(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var s CPUSet
	for i := 0; i < 64; i++ {
		s.Set(rng.Intn(128))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.String()
	}
}

func BenchmarkParseCPUList(b *testing.B) {
	const text = "1-7,9-15,17-23,25-31,33-39,41-47,49-55,57-63,65-71,73-79,81-87,89-95,97-103,105-111,113-119,121-127"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseCPUList(text); err != nil {
			b.Fatal(err)
		}
	}
}
