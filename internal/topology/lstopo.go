package topology

import (
	"fmt"
	"io"
	"strings"
)

// formatCacheSize renders cache sizes the way hwloc's lstopo does: whole
// megabytes as "12MB", sub-megabyte (or non-integral MB) sizes in KB.
func formatCacheSize(b uint64) string {
	if b >= mib && b%mib == 0 {
		return fmt.Sprintf("%dMB", b/mib)
	}
	return fmt.Sprintf("%dKB", b/kib)
}

// WriteLstopo renders the machine as an lstopo-style text tree, matching the
// paper's Listing 1 output (ZeroSum prints this at startup so users who have
// never run lstopo still see how cores, caches, NUMA domains and HWTs are
// organised). Logical indexes (L#) are assigned in tree order; PU lines also
// carry the OS index (P#), which is where the logical/physical confusion the
// listing warns about becomes visible.
func WriteLstopo(w io.Writer, m *Machine) error {
	bw := &errWriter{w: w}
	bw.printf("Machine L#0 (%s)\n", formatMemSize(m.MemBytes))
	l3 := 0
	l2 := 0
	l1 := 0
	core := 0
	numaCount := len(m.NUMANodes())
	for _, pkg := range m.Packages {
		bw.printf("  Package L#%d\n", pkg.OSIndex)
		for _, nn := range pkg.NUMA {
			indent := "    "
			if numaCount > 1 {
				bw.printf("    NUMANode L#%d P#%d (%s)\n", nn.OSIndex, nn.OSIndex, formatMemSize(nn.MemBytes))
				indent = "      "
			}
			for _, g := range nn.L3 {
				bw.printf("%sL3Cache L#%d %s\n", indent, l3, formatCacheSize(g.L3Bytes))
				l3++
				for _, c := range g.Cores {
					bw.printf("%s  L2Cache L#%d %s\n", indent, l2, formatCacheSize(c.L2Bytes))
					l2++
					bw.printf("%s    L1Cache L#%d %s\n", indent, l1, formatCacheSize(c.L1Bytes))
					l1++
					reserved := ""
					if c.Reserved {
						reserved = " (reserved)"
					}
					bw.printf("%s      Core L#%d%s\n", indent, core, reserved)
					core++
					for _, pu := range c.PUs {
						bw.printf("%s        PU L#%d P#%d\n", indent, pu.Logical, pu.OSIndex)
					}
				}
			}
		}
	}
	for _, g := range m.GPUs {
		bw.printf("  GPU L#%d (%s, %s) P#%d NUMA#%d\n",
			g.VendorIndex, g.Model, formatMemSize(g.MemBytes), g.PhysIndex, g.NUMAIndex)
	}
	return bw.err
}

// Lstopo returns the lstopo-style rendering as a string.
func Lstopo(m *Machine) string {
	var b strings.Builder
	_ = WriteLstopo(&b, m) // strings.Builder never fails
	return b.String()
}

func formatMemSize(b uint64) string {
	switch {
	case b >= gib && b%gib == 0:
		return fmt.Sprintf("%dGB", b/gib)
	case b >= mib:
		return fmt.Sprintf("%dMB", b/mib)
	default:
		return fmt.Sprintf("%dKB", b/kib)
	}
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
