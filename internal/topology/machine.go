package topology

import (
	"fmt"
)

// Machine is the root of the hardware tree for one compute node.
type Machine struct {
	// Name identifies the node model, e.g. "frontier" or "laptop".
	Name string
	// Hostname is the network name reported to /proc and MPI.
	Hostname string
	// MemBytes is total system DRAM.
	MemBytes uint64
	// Packages are the CPU sockets.
	Packages []*Package
	// GPUs are the accelerator devices (GCDs count individually).
	GPUs []*GPU

	pusByOS map[int]*PU
	pus     []*PU // logical order
}

// Package is one CPU socket.
type Package struct {
	OSIndex int
	NUMA    []*NUMANode
	Machine *Machine
}

// NUMANode is a non-uniform memory access domain.
type NUMANode struct {
	OSIndex int
	// MemBytes is the DRAM local to this domain.
	MemBytes uint64
	// BandwidthBytesPerSec caps the aggregate memory traffic the domain's
	// controller can serve; the kernel simulator throttles task progress
	// against it (see internal/sched).
	BandwidthBytesPerSec float64
	L3                   []*CacheGroup
	Package              *Package
}

// CacheGroup is a last-level cache region: a set of cores sharing one L3.
type CacheGroup struct {
	OSIndex int
	L3Bytes uint64
	Cores   []*Core
	NUMA    *NUMANode
}

// Core is a physical core with per-core L2/L1 and one PU per hardware thread.
type Core struct {
	OSIndex int
	L2Bytes uint64
	L1Bytes uint64
	PUs     []*PU
	Group   *CacheGroup
	// Reserved marks cores set aside for system processes by the scheduler
	// (the paper's "first core of each L3 region" on Frontier).
	Reserved bool
}

// PU is a processing unit (hardware thread). OSIndex is the kernel's CPU
// number (P# in hwloc terms); Logical is the hwloc logical index (L#).
type PU struct {
	OSIndex int
	Logical int
	Core    *Core
}

// GPU is one accelerator device. On Frontier each MI250X GCD is a separate
// GPU as seen by HIP, and VendorIndex (the "visible" index) differs from the
// physical index; the NUMA association is likewise non-intuitive (Fig. 2).
type GPU struct {
	// VendorIndex is the index the vendor runtime exposes (HIP/CUDA device
	// ordinal once all devices are visible).
	VendorIndex int
	// PhysIndex is the physical device/GCD index on the board.
	PhysIndex int
	// NUMAIndex is the NUMA domain with the local physical connection.
	NUMAIndex int
	Model     string
	MemBytes  uint64
	// GTTBytes is the host-visible aperture (graphics translation table).
	GTTBytes uint64
	// PeakClockMHz and BaseClockMHz bound the simulated GFX clock.
	PeakClockMHz float64
	BaseClockMHz float64
	// TDPWatts is the board power limit for simulated power/energy metrics.
	TDPWatts float64
}

// finalize wires parent pointers, assigns hwloc logical indexes in tree
// order, and builds the OS-index lookup. Builders must call it once.
func (m *Machine) finalize() error {
	m.pusByOS = make(map[int]*PU)
	m.pus = m.pus[:0]
	logical := 0
	coreLogical := 0
	l3Logical := 0
	for _, pkg := range m.Packages {
		pkg.Machine = m
		for _, nn := range pkg.NUMA {
			nn.Package = pkg
			for _, g := range nn.L3 {
				g.NUMA = nn
				g.OSIndex = l3Logical
				l3Logical++
				for _, c := range g.Cores {
					c.Group = g
					_ = coreLogical
					coreLogical++
					for _, pu := range c.PUs {
						pu.Core = c
						pu.Logical = logical
						logical++
						if _, dup := m.pusByOS[pu.OSIndex]; dup {
							return fmt.Errorf("topology: duplicate PU OS index %d", pu.OSIndex)
						}
						m.pusByOS[pu.OSIndex] = pu
						m.pus = append(m.pus, pu)
					}
				}
			}
		}
	}
	if logical == 0 {
		return fmt.Errorf("topology: machine %q has no PUs", m.Name)
	}
	return nil
}

// PUs returns all processing units in logical (tree) order.
func (m *Machine) PUs() []*PU { return m.pus }

// NumPUs returns the number of hardware threads.
func (m *Machine) NumPUs() int { return len(m.pus) }

// PUByOS returns the PU with the given OS index, or nil.
func (m *Machine) PUByOS(os int) *PU { return m.pusByOS[os] }

// Cores returns all cores in tree order.
func (m *Machine) Cores() []*Core {
	var out []*Core
	for _, pkg := range m.Packages {
		for _, nn := range pkg.NUMA {
			for _, g := range nn.L3 {
				out = append(out, g.Cores...)
			}
		}
	}
	return out
}

// NumCores returns the number of physical cores.
func (m *Machine) NumCores() int { return len(m.Cores()) }

// NUMANodes returns all NUMA domains in tree order.
func (m *Machine) NUMANodes() []*NUMANode {
	var out []*NUMANode
	for _, pkg := range m.Packages {
		out = append(out, pkg.NUMA...)
	}
	return out
}

// NUMAByIndex returns the NUMA domain with the given OS index, or nil.
func (m *Machine) NUMAByIndex(idx int) *NUMANode {
	for _, nn := range m.NUMANodes() {
		if nn.OSIndex == idx {
			return nn
		}
	}
	return nil
}

// AllPUSet returns the set of every PU OS index on the machine.
func (m *Machine) AllPUSet() CPUSet {
	var s CPUSet
	for _, pu := range m.pus {
		s.Set(pu.OSIndex)
	}
	return s
}

// ReservedSet returns the PUs of all reserved cores.
func (m *Machine) ReservedSet() CPUSet {
	var s CPUSet
	for _, c := range m.Cores() {
		if c.Reserved {
			for _, pu := range c.PUs {
				s.Set(pu.OSIndex)
			}
		}
	}
	return s
}

// UsableSet returns every PU except those on reserved cores, optionally
// restricted to the first threadsPerCore hardware threads of each core
// (threadsPerCore <= 0 means all).
func (m *Machine) UsableSet(threadsPerCore int) CPUSet {
	var s CPUSet
	for _, c := range m.Cores() {
		if c.Reserved {
			continue
		}
		for i, pu := range c.PUs {
			if threadsPerCore > 0 && i >= threadsPerCore {
				break
			}
			s.Set(pu.OSIndex)
		}
	}
	return s
}

// PUSetForNUMA returns the PUs belonging to one NUMA domain.
func (m *Machine) PUSetForNUMA(idx int) CPUSet {
	var s CPUSet
	nn := m.NUMAByIndex(idx)
	if nn == nil {
		return s
	}
	for _, g := range nn.L3 {
		for _, c := range g.Cores {
			for _, pu := range c.PUs {
				s.Set(pu.OSIndex)
			}
		}
	}
	return s
}

// NUMAOf returns the NUMA domain containing PU OS index, or nil.
func (m *Machine) NUMAOf(osIdx int) *NUMANode {
	pu := m.PUByOS(osIdx)
	if pu == nil {
		return nil
	}
	return pu.Core.Group.NUMA
}

// CoreOf returns the core containing PU OS index, or nil.
func (m *Machine) CoreOf(osIdx int) *Core {
	pu := m.PUByOS(osIdx)
	if pu == nil {
		return nil
	}
	return pu.Core
}

// SiblingSet returns the set of all PUs sharing a core with osIdx
// (including osIdx itself). Empty if the PU does not exist.
func (m *Machine) SiblingSet(osIdx int) CPUSet {
	var s CPUSet
	c := m.CoreOf(osIdx)
	if c == nil {
		return s
	}
	for _, pu := range c.PUs {
		s.Set(pu.OSIndex)
	}
	return s
}

// GPUsForNUMA returns the GPUs physically connected to NUMA domain idx,
// ordered by vendor index.
func (m *Machine) GPUsForNUMA(idx int) []*GPU {
	var out []*GPU
	for _, g := range m.GPUs {
		if g.NUMAIndex == idx {
			out = append(out, g)
		}
	}
	return out
}

// GPUByVendorIndex returns the GPU with the given vendor-visible index.
func (m *Machine) GPUByVendorIndex(idx int) *GPU {
	for _, g := range m.GPUs {
		if g.VendorIndex == idx {
			return g
		}
	}
	return nil
}

// ClosestGPUs returns the vendor indexes of GPUs local to the NUMA domain of
// the given cpuset (the semantics of Slurm's --gpu-bind=closest). If the
// cpuset spans domains, GPUs of every covered domain are returned.
func (m *Machine) ClosestGPUs(cpus CPUSet) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range cpus.List() {
		nn := m.NUMAOf(p)
		if nn == nil {
			continue
		}
		for _, g := range m.GPUsForNUMA(nn.OSIndex) {
			if !seen[g.VendorIndex] {
				seen[g.VendorIndex] = true
				out = append(out, g.VendorIndex)
			}
		}
	}
	return out
}

// Validate performs structural sanity checks and returns the first problem
// found, or nil.
func (m *Machine) Validate() error {
	if m.NumPUs() == 0 {
		return fmt.Errorf("topology: no PUs")
	}
	for _, c := range m.Cores() {
		if len(c.PUs) == 0 {
			return fmt.Errorf("topology: core %d has no PUs", c.OSIndex)
		}
	}
	for _, g := range m.GPUs {
		if m.NUMAByIndex(g.NUMAIndex) == nil {
			return fmt.Errorf("topology: GPU %d references missing NUMA %d", g.VendorIndex, g.NUMAIndex)
		}
	}
	return nil
}
