package topology

import (
	"strings"
	"testing"
)

func TestFrontierShape(t *testing.T) {
	m := Frontier()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.NumCores(); got != 64 {
		t.Fatalf("cores = %d, want 64", got)
	}
	if got := m.NumPUs(); got != 128 {
		t.Fatalf("PUs = %d, want 128", got)
	}
	if got := len(m.NUMANodes()); got != 4 {
		t.Fatalf("NUMA domains = %d, want 4", got)
	}
	if got := len(m.GPUs); got != 8 {
		t.Fatalf("GPUs/GCDs = %d, want 8", got)
	}
	// Core c pairs PUs c and c+64.
	core5 := m.CoreOf(5)
	if core5 == nil || len(core5.PUs) != 2 {
		t.Fatal("core of PU 5 malformed")
	}
	if sib := m.SiblingSet(5); sib.String() != "5,69" {
		t.Fatalf("siblings of PU 5 = %s, want 5,69", sib.String())
	}
	// First core of every L3 region is reserved: cores 0,8,16,...,56.
	res := m.ReservedSet()
	for _, c := range []int{0, 8, 16, 24, 32, 40, 48, 56} {
		if !res.Contains(c) || !res.Contains(c+64) {
			t.Fatalf("core %d should be reserved (both HWTs)", c)
		}
	}
	if res.Count() != 16 {
		t.Fatalf("reserved PUs = %d, want 16", res.Count())
	}
	// Usable with 1 thread/core: 56 PUs, none reserved, all < 64.
	usable := m.UsableSet(1)
	if usable.Count() != 56 {
		t.Fatalf("usable 1t/core = %d, want 56", usable.Count())
	}
	if usable.Last() >= 64 {
		t.Fatalf("1t/core should only use first HWTs, got last=%d", usable.Last())
	}
	if m.UsableSet(0).Count() != 112 {
		t.Fatalf("usable all threads = %d, want 112", m.UsableSet(0).Count())
	}
}

func TestFrontierGPUNUMAAssociation(t *testing.T) {
	m := Frontier()
	// Paper Fig. 2: GPU vendor pairs [[4,5],[2,3],[6,7],[0,1]] map to NUMA
	// domains [0,1,2,3]; so GCD 0 is connected to NUMA 3, whose cores start
	// at 48.
	g0 := m.GPUByVendorIndex(0)
	if g0 == nil || g0.NUMAIndex != 3 {
		t.Fatalf("GCD 0 NUMA = %+v, want NUMA 3", g0)
	}
	numa3 := m.PUSetForNUMA(3)
	if numa3.First() != 48 {
		t.Fatalf("NUMA 3 first core = %d, want 48", numa3.First())
	}
	// closest GPUs for a rank pinned to NUMA 0 cores must be GCDs 4,5.
	got := m.ClosestGPUs(RangeCPUSet(1, 7))
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("ClosestGPUs(1-7) = %v, want [4 5]", got)
	}
}

func TestNUMAOfAndCoreOf(t *testing.T) {
	m := Frontier()
	if nn := m.NUMAOf(17); nn == nil || nn.OSIndex != 1 {
		t.Fatalf("NUMAOf(17) = %v, want domain 1", nn)
	}
	if nn := m.NUMAOf(17 + 64); nn == nil || nn.OSIndex != 1 {
		t.Fatal("second HWT should map to the same NUMA domain")
	}
	if m.NUMAOf(999) != nil || m.CoreOf(999) != nil {
		t.Fatal("out-of-range PU should yield nil")
	}
}

func TestSummitShape(t *testing.T) {
	m := Summit()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.NumCores(); got != 44 {
		t.Fatalf("cores = %d, want 44", got)
	}
	if got := m.NumPUs(); got != 176 {
		t.Fatalf("PUs = %d, want 176", got)
	}
	// The usable numbering skips 84..87 (the reserved core's PUs), which is
	// why the OLCF node diagram jumps from 83 to 88.
	if pu := m.PUByOS(84); pu == nil || !pu.Core.Reserved {
		t.Fatal("PU 84 should exist on the reserved core of socket 0")
	}
	if pu := m.PUByOS(88); pu == nil || pu.Core.Reserved || pu.Core.Group.NUMA.OSIndex != 1 {
		t.Fatal("PU 88 should be the first usable PU of socket 1")
	}
	if m.UsableSet(0).Contains(84) || m.UsableSet(0).Contains(87) {
		t.Fatal("reserved-core PUs 84-87 must not be usable")
	}
	if got := len(m.GPUs); got != 6 {
		t.Fatalf("GPUs = %d, want 6", got)
	}
}

func TestPerlmutterAndAurora(t *testing.T) {
	p := Perlmutter()
	if p.NumCores() != 64 || len(p.GPUs) != 4 {
		t.Fatalf("perlmutter: cores=%d gpus=%d", p.NumCores(), len(p.GPUs))
	}
	a := Aurora()
	if a.NumCores() != 104 || len(a.GPUs) != 6 {
		t.Fatalf("aurora: cores=%d gpus=%d", a.NumCores(), len(a.GPUs))
	}
	for _, m := range []*Machine{p, a} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range PresetNames() {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if m.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, m.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown preset should error")
	}
}

func TestBuildRejectsBadSpec(t *testing.T) {
	if _, err := Build(Spec{Name: "bad"}); err == nil {
		t.Fatal("zero-count spec should fail")
	}
	if _, err := Build(Spec{Packages: 1, NUMAPerPackage: 1, L3PerNUMA: 1, CoresPerL3: -1, ThreadsPerCore: 1}); err == nil {
		t.Fatal("negative count should fail")
	}
}

func TestBuildDetectsDuplicatePU(t *testing.T) {
	// SecondThreadOffset=0 defaults to core count; offset 0 is not directly
	// settable to collide, so construct a hand-built duplicate.
	m := &Machine{Name: "dup"}
	pkg := &Package{}
	nn := &NUMANode{}
	grp := &CacheGroup{}
	c := &Core{PUs: []*PU{{OSIndex: 0}, {OSIndex: 0}}}
	grp.Cores = []*Core{c}
	nn.L3 = []*CacheGroup{grp}
	pkg.NUMA = []*NUMANode{nn}
	m.Packages = []*Package{pkg}
	if err := m.finalize(); err == nil {
		t.Fatal("duplicate PU OS index should fail finalize")
	}
}

func TestLaptopLstopoMatchesListing1(t *testing.T) {
	m := Laptop4Core()
	out := Lstopo(m)
	// Spot-check the structure of the paper's Listing 1.
	for _, want := range []string{
		"Machine L#0",
		"Package L#0",
		"L3Cache L#0 12MB",
		"L2Cache L#0 1280KB",
		"L1Cache L#0 48KB",
		"Core L#0",
		"PU L#0 P#0",
		"PU L#1 P#4",
		"Core L#3",
		"PU L#6 P#3",
		"PU L#7 P#7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("lstopo output missing %q:\n%s", want, out)
		}
	}
	// One L3, four L2s.
	if strings.Count(out, "L3Cache") != 1 {
		t.Errorf("want exactly one L3Cache line:\n%s", out)
	}
	if strings.Count(out, "L2Cache") != 4 {
		t.Errorf("want four L2Cache lines:\n%s", out)
	}
	if strings.Count(out, "PU L#") != 8 {
		t.Errorf("want eight PU lines:\n%s", out)
	}
}

func TestLstopoFrontierShowsNUMAAndGPUs(t *testing.T) {
	out := Lstopo(Frontier())
	if strings.Count(out, "NUMANode") != 4 {
		t.Errorf("want 4 NUMANode lines:\n%s", out)
	}
	if strings.Count(out, "GPU L#") != 8 {
		t.Errorf("want 8 GPU lines")
	}
	if !strings.Contains(out, "Core L#0 (reserved)") {
		t.Errorf("reserved core annotation missing")
	}
	if !strings.Contains(out, "GPU L#0 (AMD MI250X GCD, 64GB) P#6 NUMA#3") {
		t.Errorf("GCD0/NUMA3 line missing or wrong:\n%s", out)
	}
}

func TestUsableSetLaptop(t *testing.T) {
	m := Laptop4Core()
	if got := m.UsableSet(0).String(); got != "0-7" {
		t.Fatalf("usable = %q, want 0-7", got)
	}
	if got := m.UsableSet(1).String(); got != "0-3" {
		t.Fatalf("usable 1t = %q, want 0-3", got)
	}
}

func BenchmarkFrontierBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Frontier()
	}
}

func BenchmarkLstopoFrontier(b *testing.B) {
	m := Frontier()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Lstopo(m)
	}
}
