package topology

import "fmt"

// Preset names accepted by ByName and the lstopo/zsrun CLIs.
const (
	PresetFrontier   = "frontier"
	PresetSummit     = "summit"
	PresetPerlmutter = "perlmutter"
	PresetAurora     = "aurora"
	PresetLaptop     = "laptop"
)

const (
	kib = 1024
	mib = 1024 * kib
	gib = 1024 * mib
)

// Frontier models an OLCF Frontier compute node (Fig. 2): one 64-core
// "Optimized 3rd Gen EPYC", 2 HWT/core, 512 GB DDR4 over 4 NUMA domains of
// 2×8-core L3 regions, and four MI250X GPUs exposing 8 GCDs. The first core
// of each L3 region is reserved for system processes (the low-noise
// default), and the GPU vendor indexing is the paper's non-intuitive
// [[4,5],[2,3],[6,7],[0,1]] per NUMA domain [0,1,2,3].
func Frontier() *Machine {
	spec := Spec{
		Name:                  PresetFrontier,
		Hostname:              "frontier09085",
		MemBytes:              512 * gib,
		Packages:              1,
		NUMAPerPackage:        4,
		L3PerNUMA:             2,
		CoresPerL3:            8,
		ThreadsPerCore:        2,
		L3Bytes:               32 * mib,
		L2Bytes:               512 * kib,
		L1Bytes:               32 * kib,
		NUMABandwidth:         50e9, // ~50 GB/s per domain, DDR4 class
		ReserveFirstCorePerL3: true,
	}
	// GCD vendor index pairs per NUMA domain, per Fig. 2.
	pairs := [4][2]int{{4, 5}, {2, 3}, {6, 7}, {0, 1}}
	phys := 0
	for numa, pr := range pairs {
		for _, v := range pr {
			spec.GPUs = append(spec.GPUs, GPUSpec{
				VendorIndex: v,
				PhysIndex:   phys,
				NUMAIndex:   numa,
				Model:       "AMD MI250X GCD",
				MemBytes:    64 * gib,
				GTTBytes:    256 * gib,
				PeakMHz:     1700,
				BaseMHz:     800,
				TDPWatts:    280,
			})
			phys++
		}
	}
	return MustBuild(spec)
}

// Summit models an OLCF Summit node (Fig. 1): two POWER9 sockets with 21
// usable cores each (one core per socket reserved, which is why the core
// numbering in the OLCF diagram skips from 83 to 88), 4 HWT/core, 512 GB,
// and six V100 GPUs, three per socket.
func Summit() *Machine {
	m := &Machine{Name: PresetSummit, Hostname: "summit0001", MemBytes: 512 * gib}
	// POWER9 SMT4: PU OS indexes are contiguous per core (core c holds PUs
	// 4c..4c+3), so the builder's offset convention does not apply; build
	// by hand. Socket 1's numbering restarts at PU 88 (core 22).
	coreBase := [2]int{0, 22}
	for s := 0; s < 2; s++ {
		pkg := &Package{OSIndex: s}
		nn := &NUMANode{OSIndex: s, MemBytes: 256 * gib, BandwidthBytesPerSec: 135e9}
		grp := &CacheGroup{L3Bytes: 110 * mib}
		for c := 0; c < 22; c++ {
			core := &Core{
				OSIndex: coreBase[s] + c,
				L2Bytes: 512 * kib,
				L1Bytes: 32 * kib,
			}
			if c == 21 { // last core reserved for system use
				core.Reserved = true
			}
			for t := 0; t < 4; t++ {
				core.PUs = append(core.PUs, &PU{OSIndex: (coreBase[s]+c)*4 + t})
			}
			grp.Cores = append(grp.Cores, core)
		}
		nn.L3 = append(nn.L3, grp)
		pkg.NUMA = append(pkg.NUMA, nn)
		m.Packages = append(m.Packages, pkg)
	}
	for g := 0; g < 6; g++ {
		m.GPUs = append(m.GPUs, &GPU{
			VendorIndex:  g,
			PhysIndex:    g,
			NUMAIndex:    g / 3,
			Model:        "NVIDIA V100",
			MemBytes:     16 * gib,
			GTTBytes:     0,
			PeakClockMHz: 1530,
			BaseClockMHz: 1290,
			TDPWatts:     300,
		})
	}
	if err := m.finalize(); err != nil {
		panic(err)
	}
	return m
}

// Perlmutter models a NERSC Perlmutter GPU node (Fig. 3 left): one 64-core
// AMD Milan, 2 HWT/core, 256 GB over 4 NUMA domains, four A100 GPUs. The
// NERSC diagram gives no GPU ordering; we attach GPU i to NUMA domain i.
func Perlmutter() *Machine {
	spec := Spec{
		Name:           PresetPerlmutter,
		Hostname:       "nid001234",
		MemBytes:       256 * gib,
		Packages:       1,
		NUMAPerPackage: 4,
		L3PerNUMA:      2,
		CoresPerL3:     8,
		ThreadsPerCore: 2,
		L3Bytes:        32 * mib,
		L2Bytes:        512 * kib,
		L1Bytes:        32 * kib,
		NUMABandwidth:  51e9,
	}
	for g := 0; g < 4; g++ {
		spec.GPUs = append(spec.GPUs, GPUSpec{
			VendorIndex: g, PhysIndex: g, NUMAIndex: g,
			Model: "NVIDIA A100", MemBytes: 40 * gib,
			PeakMHz: 1410, BaseMHz: 765, TDPWatts: 400,
		})
	}
	return MustBuild(spec)
}

// Aurora models an ALCF Aurora node (Fig. 3 right): two Xeon Max sockets of
// 52 cores, 2 HWT/core, and six Intel Data Center GPU Max devices, three per
// socket.
func Aurora() *Machine {
	spec := Spec{
		Name:           PresetAurora,
		Hostname:       "aurora-uan-01",
		MemBytes:       1024 * gib,
		Packages:       2,
		NUMAPerPackage: 1,
		L3PerNUMA:      1,
		CoresPerL3:     52,
		ThreadsPerCore: 2,
		L3Bytes:        105 * mib,
		L2Bytes:        2 * mib,
		L1Bytes:        48 * kib,
		NUMABandwidth:  300e9, // HBM-backed
	}
	for g := 0; g < 6; g++ {
		spec.GPUs = append(spec.GPUs, GPUSpec{
			VendorIndex: g, PhysIndex: g, NUMAIndex: g / 3,
			Model: "Intel Data Center GPU Max", MemBytes: 128 * gib,
			PeakMHz: 1600, BaseMHz: 900, TDPWatts: 600,
		})
	}
	return MustBuild(spec)
}

// Laptop4Core models the paper's Listing-1 test system: a single Intel Core
// i7-1165G7 with four cores, two PUs per core, a shared 12 MB L3, 1280 KB
// L2 and 48 KB L1 per core. PU P# numbering pairs core c with P#c and
// P#(c+4), so logical L# differs from OS P# exactly as the listing warns.
func Laptop4Core() *Machine {
	return MustBuild(Spec{
		Name:               PresetLaptop,
		Hostname:           "testbox",
		MemBytes:           16 * gib,
		Packages:           1,
		NUMAPerPackage:     1,
		L3PerNUMA:          1,
		CoresPerL3:         4,
		ThreadsPerCore:     2,
		L3Bytes:            12 * mib,
		L2Bytes:            1280 * kib,
		L1Bytes:            48 * kib,
		NUMABandwidth:      30e9,
		SecondThreadOffset: 4,
	})
}

// ByName returns the preset machine with the given name.
func ByName(name string) (*Machine, error) {
	switch name {
	case PresetFrontier:
		return Frontier(), nil
	case PresetSummit:
		return Summit(), nil
	case PresetPerlmutter:
		return Perlmutter(), nil
	case PresetAurora:
		return Aurora(), nil
	case PresetLaptop:
		return Laptop4Core(), nil
	}
	return nil, fmt.Errorf("topology: unknown preset %q (want one of frontier, summit, perlmutter, aurora, laptop)", name)
}

// PresetNames lists the available presets.
func PresetNames() []string {
	return []string{PresetFrontier, PresetSummit, PresetPerlmutter, PresetAurora, PresetLaptop}
}
