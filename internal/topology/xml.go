package topology

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The hwloc v2 XML interchange subset: ZeroSum links against hwloc when
// available (paper §3.1), and hwloc installations exchange topologies as
// XML (`lstopo --of xml`). This file renders a Machine as hwloc-v2-style
// XML and parses such XML back, so topologies captured on real systems can
// be replayed in the simulator.

// xmlObject mirrors hwloc's <object> element.
type xmlObject struct {
	XMLName  xml.Name    `xml:"object"`
	Type     string      `xml:"type,attr"`
	OSIndex  *int        `xml:"os_index,attr,omitempty"`
	CPUSet   string      `xml:"cpuset,attr,omitempty"`
	Name     string      `xml:"name,attr,omitempty"`
	Size     uint64      `xml:"cache_size,attr,omitempty"`
	Depth    int         `xml:"depth,attr,omitempty"`
	Memory   uint64      `xml:"local_memory,attr,omitempty"`
	Children []xmlObject `xml:"object"`
	Infos    []xmlInfo   `xml:"info"`
}

type xmlInfo struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

type xmlTopology struct {
	XMLName xml.Name  `xml:"topology"`
	Version string    `xml:"version,attr,omitempty"`
	Root    xmlObject `xml:"object"`
}

func intPtr(v int) *int { return &v }

// MarshalXML renders the machine as hwloc-v2-style XML.
func MarshalXML(m *Machine) ([]byte, error) {
	root := xmlObject{
		Type:    "Machine",
		OSIndex: intPtr(0),
		CPUSet:  m.AllPUSet().HexMask(),
		Memory:  m.MemBytes,
		Infos: []xmlInfo{
			{Name: "HostName", Value: m.Hostname},
			{Name: "ModelName", Value: m.Name},
		},
	}
	for _, pkg := range m.Packages {
		xp := xmlObject{Type: "Package", OSIndex: intPtr(pkg.OSIndex)}
		for _, nn := range pkg.NUMA {
			xn := xmlObject{
				Type:    "NUMANode",
				OSIndex: intPtr(nn.OSIndex),
				Memory:  nn.MemBytes,
			}
			if nn.BandwidthBytesPerSec > 0 {
				xn.Infos = append(xn.Infos, xmlInfo{
					Name: "MemoryBandwidthBytesPerSec", Value: strconv.FormatFloat(nn.BandwidthBytesPerSec, 'f', 0, 64),
				})
			}
			for _, g := range nn.L3 {
				xg := xmlObject{Type: "L3Cache", OSIndex: intPtr(g.OSIndex), Size: g.L3Bytes, Depth: 3}
				for _, c := range g.Cores {
					xc := xmlObject{Type: "Core", OSIndex: intPtr(c.OSIndex)}
					if c.Reserved {
						xc.Infos = append(xc.Infos, xmlInfo{Name: "Reserved", Value: "1"})
					}
					xl2 := xmlObject{Type: "L2Cache", OSIndex: intPtr(c.OSIndex), Size: c.L2Bytes, Depth: 2}
					xl1 := xmlObject{Type: "L1Cache", OSIndex: intPtr(c.OSIndex), Size: c.L1Bytes, Depth: 1}
					for _, pu := range c.PUs {
						xl1.Children = append(xl1.Children, xmlObject{
							Type: "PU", OSIndex: intPtr(pu.OSIndex),
							CPUSet: NewCPUSet(pu.OSIndex).HexMask(),
						})
					}
					xl2.Children = append(xl2.Children, xl1)
					xc.Children = append(xc.Children, xl2)
					xg.Children = append(xg.Children, xc)
				}
				xn.Children = append(xn.Children, xg)
			}
			xp.Children = append(xp.Children, xn)
		}
		root.Children = append(root.Children, xp)
	}
	for _, g := range m.GPUs {
		root.Children = append(root.Children, xmlObject{
			Type:    "OSDev",
			Name:    g.Model,
			OSIndex: intPtr(g.VendorIndex),
			Infos: []xmlInfo{
				{Name: "Backend", Value: "GPU"},
				{Name: "PhysIndex", Value: strconv.Itoa(g.PhysIndex)},
				{Name: "NUMAIndex", Value: strconv.Itoa(g.NUMAIndex)},
				{Name: "MemoryBytes", Value: strconv.FormatUint(g.MemBytes, 10)},
				{Name: "GTTBytes", Value: strconv.FormatUint(g.GTTBytes, 10)},
				{Name: "PeakClockMHz", Value: strconv.FormatFloat(g.PeakClockMHz, 'f', 0, 64)},
				{Name: "BaseClockMHz", Value: strconv.FormatFloat(g.BaseClockMHz, 'f', 0, 64)},
				{Name: "TDPWatts", Value: strconv.FormatFloat(g.TDPWatts, 'f', 0, 64)},
			},
		})
	}
	doc := xmlTopology{Version: "2.0", Root: root}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("topology: marshal xml: %w", err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

// WriteXML writes the hwloc-style XML to w.
func WriteXML(w io.Writer, m *Machine) error {
	b, err := MarshalXML(m)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// UnmarshalXML parses hwloc-v2-style XML (as produced by MarshalXML, or a
// compatible subset of real `lstopo --of xml` output) into a Machine.
func UnmarshalXML(data []byte) (*Machine, error) {
	var doc xmlTopology
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("topology: parse xml: %w", err)
	}
	if !strings.EqualFold(doc.Root.Type, "machine") {
		return nil, fmt.Errorf("topology: root object is %q, want Machine", doc.Root.Type)
	}
	m := &Machine{MemBytes: doc.Root.Memory}
	for _, info := range doc.Root.Infos {
		switch info.Name {
		case "HostName":
			m.Hostname = info.Value
		case "ModelName":
			m.Name = info.Value
		}
	}
	if m.Name == "" {
		m.Name = "imported"
	}
	if m.Hostname == "" {
		m.Hostname = m.Name
	}
	for _, child := range doc.Root.Children {
		switch strings.ToLower(child.Type) {
		case "package":
			pkg, err := parsePackage(child)
			if err != nil {
				return nil, err
			}
			m.Packages = append(m.Packages, pkg)
		case "osdev":
			gpu, err := parseGPU(child)
			if err != nil {
				return nil, err
			}
			if gpu != nil {
				m.GPUs = append(m.GPUs, gpu)
			}
		}
	}
	if err := m.finalize(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadXML parses hwloc-style XML from r.
func ReadXML(r io.Reader) (*Machine, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("topology: read xml: %w", err)
	}
	return UnmarshalXML(data)
}

func osIdx(o xmlObject) int {
	if o.OSIndex != nil {
		return *o.OSIndex
	}
	return 0
}

func parsePackage(o xmlObject) (*Package, error) {
	pkg := &Package{OSIndex: osIdx(o)}
	// Packages may contain NUMANodes directly, or (on single-NUMA
	// machines exported by real hwloc) caches/cores directly; wrap the
	// latter in an implicit NUMA node.
	var implicit *NUMANode
	for _, child := range o.Children {
		switch strings.ToLower(child.Type) {
		case "numanode":
			nn, err := parseNUMA(child)
			if err != nil {
				return nil, err
			}
			pkg.NUMA = append(pkg.NUMA, nn)
		case "l3cache", "core":
			if implicit == nil {
				implicit = &NUMANode{OSIndex: pkg.OSIndex}
				pkg.NUMA = append(pkg.NUMA, implicit)
			}
			if err := attachCacheOrCore(implicit, child); err != nil {
				return nil, err
			}
		}
	}
	if len(pkg.NUMA) == 0 {
		return nil, fmt.Errorf("topology: package %d has no NUMA nodes or cores", pkg.OSIndex)
	}
	return pkg, nil
}

func parseNUMA(o xmlObject) (*NUMANode, error) {
	nn := &NUMANode{OSIndex: osIdx(o), MemBytes: o.Memory}
	for _, info := range o.Infos {
		if info.Name == "MemoryBandwidthBytesPerSec" {
			if v, err := strconv.ParseFloat(info.Value, 64); err == nil {
				nn.BandwidthBytesPerSec = v
			}
		}
	}
	for _, child := range o.Children {
		if err := attachCacheOrCore(nn, child); err != nil {
			return nil, err
		}
	}
	if len(nn.L3) == 0 {
		return nil, fmt.Errorf("topology: NUMA node %d has no caches or cores", nn.OSIndex)
	}
	return nn, nil
}

func attachCacheOrCore(nn *NUMANode, o xmlObject) error {
	switch strings.ToLower(o.Type) {
	case "l3cache":
		grp := &CacheGroup{OSIndex: osIdx(o), L3Bytes: o.Size}
		for _, child := range o.Children {
			if strings.EqualFold(child.Type, "core") {
				core, err := parseCore(child)
				if err != nil {
					return err
				}
				grp.Cores = append(grp.Cores, core)
			}
		}
		if len(grp.Cores) == 0 {
			return fmt.Errorf("topology: L3 group %d has no cores", grp.OSIndex)
		}
		nn.L3 = append(nn.L3, grp)
		return nil
	case "core":
		// Core directly under the NUMA node: implicit L3 group.
		if len(nn.L3) == 0 {
			nn.L3 = append(nn.L3, &CacheGroup{OSIndex: nn.OSIndex})
		}
		core, err := parseCore(o)
		if err != nil {
			return err
		}
		grp := nn.L3[len(nn.L3)-1]
		grp.Cores = append(grp.Cores, core)
		return nil
	}
	return nil // tolerate unknown siblings (Misc, Bridge, ...)
}

func parseCore(o xmlObject) (*Core, error) {
	core := &Core{OSIndex: osIdx(o)}
	for _, info := range o.Infos {
		if info.Name == "Reserved" && info.Value == "1" {
			core.Reserved = true
		}
	}
	var walk func(xmlObject) error
	walk = func(x xmlObject) error {
		switch strings.ToLower(x.Type) {
		case "l2cache":
			core.L2Bytes = x.Size
		case "l1cache":
			core.L1Bytes = x.Size
		case "pu":
			core.PUs = append(core.PUs, &PU{OSIndex: osIdx(x)})
			return nil
		}
		for _, child := range x.Children {
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	for _, child := range o.Children {
		if err := walk(child); err != nil {
			return nil, err
		}
	}
	if len(core.PUs) == 0 {
		return nil, fmt.Errorf("topology: core %d has no PUs", core.OSIndex)
	}
	return core, nil
}

func parseGPU(o xmlObject) (*GPU, error) {
	infos := map[string]string{}
	for _, info := range o.Infos {
		infos[info.Name] = info.Value
	}
	if infos["Backend"] != "GPU" {
		return nil, nil // some other OS device (NIC, block...)
	}
	g := &GPU{VendorIndex: osIdx(o), Model: o.Name}
	g.PhysIndex = atoiDefault(infos["PhysIndex"], g.VendorIndex)
	g.NUMAIndex = atoiDefault(infos["NUMAIndex"], 0)
	g.MemBytes = u64Default(infos["MemoryBytes"], 0)
	g.GTTBytes = u64Default(infos["GTTBytes"], 0)
	g.PeakClockMHz = f64Default(infos["PeakClockMHz"], 0)
	g.BaseClockMHz = f64Default(infos["BaseClockMHz"], 0)
	g.TDPWatts = f64Default(infos["TDPWatts"], 0)
	return g, nil
}

func atoiDefault(s string, def int) int {
	if v, err := strconv.Atoi(s); err == nil {
		return v
	}
	return def
}

func u64Default(s string, def uint64) uint64 {
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return v
	}
	return def
}

func f64Default(s string, def float64) float64 {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	return def
}
