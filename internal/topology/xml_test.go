package topology

import (
	"bytes"
	"strings"
	"testing"
)

// machinesEquivalent compares the structural properties monitors care about.
func machinesEquivalent(t *testing.T, a, b *Machine) {
	t.Helper()
	if a.NumPUs() != b.NumPUs() {
		t.Fatalf("PUs: %d vs %d", a.NumPUs(), b.NumPUs())
	}
	if a.NumCores() != b.NumCores() {
		t.Fatalf("cores: %d vs %d", a.NumCores(), b.NumCores())
	}
	if len(a.NUMANodes()) != len(b.NUMANodes()) {
		t.Fatalf("NUMA: %d vs %d", len(a.NUMANodes()), len(b.NUMANodes()))
	}
	if len(a.GPUs) != len(b.GPUs) {
		t.Fatalf("GPUs: %d vs %d", len(a.GPUs), len(b.GPUs))
	}
	if !a.AllPUSet().Equal(b.AllPUSet()) {
		t.Fatalf("PU sets differ: %s vs %s", a.AllPUSet(), b.AllPUSet())
	}
	if !a.ReservedSet().Equal(b.ReservedSet()) {
		t.Fatalf("reserved sets differ: %s vs %s", a.ReservedSet(), b.ReservedSet())
	}
	if a.MemBytes != b.MemBytes || a.Hostname != b.Hostname {
		t.Fatalf("machine attrs differ")
	}
	for i, ga := range a.GPUs {
		gb := b.GPUs[i]
		if ga.VendorIndex != gb.VendorIndex || ga.NUMAIndex != gb.NUMAIndex ||
			ga.MemBytes != gb.MemBytes || ga.Model != gb.Model {
			t.Fatalf("GPU %d differs: %+v vs %+v", i, ga, gb)
		}
	}
	// Per-PU structural mapping.
	for _, pu := range a.PUs() {
		pb := b.PUByOS(pu.OSIndex)
		if pb == nil {
			t.Fatalf("PU %d missing after round trip", pu.OSIndex)
		}
		if a.NUMAOf(pu.OSIndex).OSIndex != b.NUMAOf(pu.OSIndex).OSIndex {
			t.Fatalf("PU %d NUMA mapping differs", pu.OSIndex)
		}
		if !a.SiblingSet(pu.OSIndex).Equal(b.SiblingSet(pu.OSIndex)) {
			t.Fatalf("PU %d siblings differ", pu.OSIndex)
		}
	}
}

func TestXMLRoundTripAllPresets(t *testing.T) {
	for _, name := range PresetNames() {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := MarshalXML(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := UnmarshalXML(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		machinesEquivalent(t, m, back)
		// The round trip preserves bandwidth (used by the simulator).
		for i, nn := range m.NUMANodes() {
			if back.NUMANodes()[i].BandwidthBytesPerSec != nn.BandwidthBytesPerSec {
				t.Fatalf("%s: NUMA %d bandwidth lost", name, i)
			}
		}
	}
}

func TestXMLWriteRead(t *testing.T) {
	m := Frontier()
	var buf bytes.Buffer
	if err := WriteXML(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<?xml") {
		t.Fatal("missing xml header")
	}
	back, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	machinesEquivalent(t, m, back)
}

func TestXMLRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalXML([]byte("not xml at all")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := UnmarshalXML([]byte(`<topology><object type="Package"/></topology>`)); err == nil {
		t.Fatal("non-machine root should fail")
	}
	if _, err := UnmarshalXML([]byte(`<topology><object type="Machine"/></topology>`)); err == nil {
		t.Fatal("machine without PUs should fail")
	}
}

func TestXMLImplicitNUMA(t *testing.T) {
	// Real hwloc output on single-NUMA machines puts caches directly
	// under the Package; the parser wraps them in an implicit NUMA node.
	xml := `<?xml version="1.0"?>
<topology version="2.0">
  <object type="Machine" os_index="0" local_memory="1024">
    <info name="HostName" value="tiny"/>
    <object type="Package" os_index="0">
      <object type="L3Cache" os_index="0" cache_size="4194304" depth="3">
        <object type="Core" os_index="0">
          <object type="L2Cache" os_index="0" cache_size="262144" depth="2">
            <object type="L1Cache" os_index="0" cache_size="32768" depth="1">
              <object type="PU" os_index="0"/>
              <object type="PU" os_index="1"/>
            </object>
          </object>
        </object>
      </object>
    </object>
  </object>
</topology>`
	m, err := UnmarshalXML([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPUs() != 2 || m.NumCores() != 1 || len(m.NUMANodes()) != 1 {
		t.Fatalf("shape: pus=%d cores=%d numa=%d", m.NumPUs(), m.NumCores(), len(m.NUMANodes()))
	}
	if m.Hostname != "tiny" {
		t.Fatalf("hostname = %q", m.Hostname)
	}
	if m.Cores()[0].L2Bytes != 262144 || m.Cores()[0].L1Bytes != 32768 {
		t.Fatal("cache sizes lost")
	}
}

func TestXMLCoreDirectlyUnderNUMA(t *testing.T) {
	xml := `<topology><object type="Machine" local_memory="1">
  <object type="Package" os_index="0">
    <object type="NUMANode" os_index="0" local_memory="1">
      <object type="Core" os_index="0"><object type="PU" os_index="0"/></object>
      <object type="Core" os_index="1"><object type="PU" os_index="1"/></object>
    </object>
  </object>
</object></topology>`
	m, err := UnmarshalXML([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCores() != 2 {
		t.Fatalf("cores = %d", m.NumCores())
	}
}

func TestXMLIgnoresNonGPUOSDevs(t *testing.T) {
	xml := `<topology><object type="Machine" local_memory="1">
  <object type="Package" os_index="0">
    <object type="NUMANode" os_index="0">
      <object type="Core" os_index="0"><object type="PU" os_index="0"/></object>
    </object>
  </object>
  <object type="OSDev" name="eth0" os_index="0">
    <info name="Backend" value="Network"/>
  </object>
</object></topology>`
	m, err := UnmarshalXML([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.GPUs) != 0 {
		t.Fatalf("network device parsed as GPU: %+v", m.GPUs)
	}
}

func TestXMLImportedMachineRunsInSimulator(t *testing.T) {
	// The full loop the feature exists for: export Frontier, re-import,
	// verify the launcher plans identically on the imported machine.
	data, err := MarshalXML(Frontier())
	if err != nil {
		t.Fatal(err)
	}
	m, err := UnmarshalXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.UsableSet(1).Count(); got != 56 {
		t.Fatalf("imported usable cores = %d, want 56", got)
	}
	if got := m.ClosestGPUs(RangeCPUSet(1, 7)); len(got) != 2 || got[0] != 4 {
		t.Fatalf("imported GPU locality = %v", got)
	}
}
