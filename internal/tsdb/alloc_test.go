package tsdb

import (
	"testing"
	"time"
)

// TestAppendZeroAllocSteadyState pins the hot-path contract (the
// //zerosum:hotpath annotations' runtime counterpart, like the monitor's
// tick gate): once a series is warm and its head chunk has buffer slack,
// Store.Append allocates nothing — no boxing, no map churn, no bitstream
// growth inside the measured window.
func TestAppendZeroAllocSteadyState(t *testing.T) {
	st := NewStore(Options{Block: 24 * time.Hour}) // no seal inside the test
	key := SeriesKey{Node: "node0", Rank: 0, TID: 1000, Metric: "lwp.user_pct"}
	clock := int64(0)
	tick := func() {
		clock += 1e9
		st.Append("job", key, clock, float64(clock%7))
	}
	// Warm up: create job, shard map, series, head; then hand the head a
	// buffer with enough slack that append-doubling cannot fire while we
	// measure. Reaching into the head is fine — the test owns the store.
	for i := 0; i < 64; i++ {
		tick()
	}
	db := st.lookupJob("job")
	sh := db.shardFor(key)
	sh.mu.Lock()
	head := sh.series[key].head
	buf := make([]byte, len(head.w.buf), 1<<20)
	copy(buf, head.w.buf)
	head.w.buf = buf
	sh.mu.Unlock()

	if got := testing.AllocsPerRun(500, tick); got != 0 {
		t.Fatalf("steady-state Store.Append allocates %.1f times per call, want 0", got)
	}
}

// TestChunkAppendZeroAlloc gates the inner layer on its own: with buffer
// capacity available, chunk.append (codec + bit writer) is allocation-free.
func TestChunkAppendZeroAlloc(t *testing.T) {
	c := newChunk(0)
	c.w.buf = make([]byte, 0, 1<<20)
	clock := int64(0)
	if got := testing.AllocsPerRun(1000, func() {
		clock += 1e9
		c.append(clock, float64(clock%13))
	}); got != 0 {
		t.Fatalf("chunk.append allocates %.1f times per call, want 0", got)
	}
}
