package tsdb

import "errors"

// bitWriter packs bits most-significant-first into a byte slice. It is the
// substrate of the Gorilla codec: every append writes a handful of bits, so
// the writer keeps the partially-filled final byte hot and grows its buffer
// with ordinary append doubling (amortized; the steady-state append path
// does not allocate).
type bitWriter struct {
	buf  []byte
	free uint8 // writable low bits remaining in buf's final byte (0 = none)
}

// reset drops the written stream but keeps the buffer capacity.
func (w *bitWriter) reset() {
	w.buf = w.buf[:0]
	w.free = 0
}

// bytes returns the packed stream; unused trailing bits are zero.
func (w *bitWriter) bytes() []byte { return w.buf }

//zerosum:hotpath
func (w *bitWriter) writeBit(bit byte) {
	if w.free == 0 {
		w.buf = append(w.buf, 0)
		w.free = 8
	}
	if bit != 0 {
		w.buf[len(w.buf)-1] |= 1 << (w.free - 1)
	}
	w.free--
}

//zerosum:hotpath
func (w *bitWriter) writeByte(b byte) {
	if w.free == 0 {
		w.buf = append(w.buf, b)
		return
	}
	// Split across the partial final byte and a fresh one; free is
	// unchanged because exactly eight bits landed.
	w.buf[len(w.buf)-1] |= b >> (8 - w.free)
	w.buf = append(w.buf, b<<w.free)
}

// writeBits writes the low n bits of v, most significant first. n must be
// in 1..64.
//
//zerosum:hotpath
func (w *bitWriter) writeBits(v uint64, n uint) {
	v <<= 64 - n
	for n >= 8 {
		w.writeByte(byte(v >> 56))
		v <<= 8
		n -= 8
	}
	for n > 0 {
		w.writeBit(byte(v >> 63))
		v <<= 1
		n--
	}
}

// errShortChunk reports a bitstream that ended before its declared sample
// count was decoded — the decoder's over-read guard on corrupt chunks.
var errShortChunk = errors.New("tsdb: chunk bitstream shorter than its sample count")

// bitReader consumes a bitWriter stream. Reads past the end return
// errShortChunk instead of panicking, which is what the block fuzzer leans
// on: a corrupt sample count can never walk the reader off its buffer.
type bitReader struct {
	buf  []byte
	off  int   // next byte
	used uint8 // bits already consumed from buf[off]
}

func (r *bitReader) init(buf []byte) {
	r.buf = buf
	r.off = 0
	r.used = 0
}

func (r *bitReader) readBit() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, errShortChunk
	}
	b := (r.buf[r.off] >> (7 - r.used)) & 1
	r.used++
	if r.used == 8 {
		r.used = 0
		r.off++
	}
	return b, nil
}

// readBits reads n bits (1..64), most significant first.
func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for n >= 8 && r.used == 0 {
		if r.off >= len(r.buf) {
			return 0, errShortChunk
		}
		v = v<<8 | uint64(r.buf[r.off])
		r.off++
		n -= 8
	}
	for n > 0 {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(bit)
		n--
	}
	return v, nil
}
