package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Sealed-block wire format (all little endian). One encoded blob carries a
// whole job's chunk inventory — the checkpoint/transport form of the store,
// served at GET /api/job/{id}/tsdb and the on-disk spill format of the
// future:
//
//	magic   "ZSTB" (4 bytes)
//	version uint8 (currently 1)
//	job     u16 length + bytes
//	nseries u32
//	  per series: node, metric (u16 strings), rank i32, tid i32, nchunks u32
//	    per chunk: part i64, tMin i64, tMax i64, count u32,
//	               nrollups u32, rollups (bucket i64, count u32,
//	               min/max/sum/first/last f64, firstT/lastT i64),
//	               datalen u32 + Gorilla bitstream bytes
//	crc     u32 (CRC-32C of everything after the magic, before the crc)
//
// The decoder is fuzzed (FuzzTSDBBlockDecode): it must reject damage with
// an error — never panic, never let a hostile count size an allocation the
// remaining bytes cannot back, never over-read.

const (
	blockMagic   = "ZSTB"
	blockVersion = 1
	// MaxBlockEncoded bounds one encoded job blob, mirroring the frame
	// limit on the ingest wire.
	MaxBlockEncoded = 256 << 20
)

// castagnoli matches the ingest wire's checksum so damage detection is
// uniform across the two formats.
var blockCRC = crc32.MakeTable(crc32.Castagnoli)

// BlockChunk is one decoded chunk: metadata, rollups, and the still-
// compressed bitstream.
type BlockChunk struct {
	Part    int64
	TMin    int64
	TMax    int64
	Count   int
	Rollups []Rollup
	Data    []byte
}

// Samples decodes the chunk's bitstream. A corrupt stream yields an error
// and whatever prefix decoded cleanly.
func (c *BlockChunk) Samples() ([]Point, error) {
	pts := make([]Point, 0, c.Count)
	var it gIter
	it.init(c.Data, c.Count)
	for it.Next() {
		t, v := it.At()
		pts = append(pts, Point{T: t, V: v})
	}
	return pts, it.Err()
}

// BlockSeries is one decoded series with its chunks in stored order.
type BlockSeries struct {
	Key    SeriesKey
	Chunks []BlockChunk
}

// BlockSet is one job's decoded block inventory.
type BlockSet struct {
	Job    string
	Series []BlockSeries
}

// MarshalJob encodes the job's entire chunk inventory — sealed chunks and
// the live heads — as one ZSTB blob. Series appear in (rank, node, tid,
// metric) order, so equal store contents marshal to equal bytes.
func (st *Store) MarshalJob(job string) ([]byte, error) {
	bs, err := st.snapshotBlocks(job)
	if err != nil {
		return nil, err
	}
	return marshalBlockSet(bs)
}

// snapshotBlocks captures the job's chunk inventory as a BlockSet under the
// shard locks. Sealed chunk data is immutable and shared; head chunk
// bitstreams are cloned while locked because appends keep mutating them.
func (st *Store) snapshotBlocks(job string) (*BlockSet, error) {
	db := st.lookupJob(job)
	if db == nil {
		return nil, fmt.Errorf("tsdb: unknown job %q", job)
	}
	bs := &BlockSet{Job: job}
	//zerosum:locked seriesShard.mu eachShard holds the shard lock around fn
	db.eachShard(func(sh *seriesShard) {
		for key, s := range sh.series {
			fs := BlockSeries{Key: key}
			s.chunks(func(c *chunk) {
				if c.count == 0 {
					return
				}
				fc := BlockChunk{Part: c.part, TMin: c.tMin, TMax: c.tMax,
					Count: c.count, Rollups: c.rollups, Data: c.w.bytes()}
				if !c.sealed {
					fc.Data = append([]byte(nil), fc.Data...)
				}
				fs.Chunks = append(fs.Chunks, fc)
			})
			if len(fs.Chunks) > 0 {
				bs.Series = append(bs.Series, fs)
			}
		}
	})
	// Insertion sort: series counts per job are modest and marshalling is
	// not a hot path.
	s := bs.Series
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && keyLess(s[j].Key, s[j-1].Key); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return bs, nil
}

// marshalBlockSet renders the ZSTB wire form of a block inventory.
//
//zerosum:wire-encode tsdb-block
func marshalBlockSet(bs *BlockSet) ([]byte, error) {
	buf := append([]byte(blockMagic), blockVersion)
	var err error
	if buf, err = appendBlockString(buf, bs.Job); err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(bs.Series)))
	for i := range bs.Series {
		fs := &bs.Series[i]
		if buf, err = appendBlockString(buf, fs.Key.Node); err != nil {
			return nil, err
		}
		if buf, err = appendBlockString(buf, fs.Key.Metric); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(fs.Key.Rank)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(fs.Key.TID)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fs.Chunks)))
		for _, fc := range fs.Chunks {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(fc.Part))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(fc.TMin))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(fc.TMax))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(fc.Count))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fc.Rollups)))
			for i := range fc.Rollups {
				r := &fc.Rollups[i]
				buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Bucket))
				buf = binary.LittleEndian.AppendUint32(buf, r.Count)
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Min))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Max))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Sum))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.First))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Last))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(r.FirstT))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(r.LastT))
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fc.Data)))
			buf = append(buf, fc.Data...)
		}
	}
	if len(buf) > MaxBlockEncoded {
		return nil, fmt.Errorf("tsdb: encoded job %q is %d bytes (max %d)", bs.Job, len(buf), MaxBlockEncoded)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[len(blockMagic):], blockCRC)), nil
}

func appendBlockString(dst []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("tsdb: string field of %d bytes too long", len(s))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// blockCursor walks an encoded blob with bounds checks everywhere.
type blockCursor struct {
	buf []byte
	off int
}

func (d *blockCursor) need(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) || d.off+n < d.off {
		return nil, fmt.Errorf("tsdb: truncated block at offset %d (need %d of %d)", d.off, n, len(d.buf))
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *blockCursor) u32() (uint32, error) {
	b, err := d.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *blockCursor) i64() (int64, error) {
	b, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

func (d *blockCursor) f64() (float64, error) {
	v, err := d.i64()
	return math.Float64frombits(uint64(v)), err
}

func (d *blockCursor) str() (string, error) {
	b, err := d.need(2)
	if err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint16(b))
	raw, err := d.need(n)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// UnmarshalBlocks decodes a ZSTB blob. Damage — bad magic, version, CRC,
// truncation, or counts the remaining bytes cannot back — returns an
// error; the function never panics on arbitrary input.
//
//zerosum:wire-decode tsdb-block
func UnmarshalBlocks(data []byte) (*BlockSet, error) {
	if len(data) > MaxBlockEncoded+4 {
		return nil, fmt.Errorf("tsdb: block blob of %d bytes exceeds %d", len(data), MaxBlockEncoded)
	}
	if len(data) < len(blockMagic)+1+4 || string(data[:len(blockMagic)]) != blockMagic {
		return nil, fmt.Errorf("tsdb: bad block magic")
	}
	if v := data[len(blockMagic)]; v != blockVersion {
		return nil, fmt.Errorf("tsdb: unsupported block version %d (want %d)", v, blockVersion)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body[len(blockMagic):], blockCRC); got != sum {
		return nil, fmt.Errorf("tsdb: block checksum mismatch (corrupt blob)")
	}
	d := &blockCursor{buf: body, off: len(blockMagic) + 1}
	bs := &BlockSet{}
	var err error
	if bs.Job, err = d.str(); err != nil {
		return nil, err
	}
	nSeries, err := d.u32()
	if err != nil {
		return nil, err
	}
	// A series costs at least its two string headers plus rank, tid and
	// chunk count: 16 bytes. Reject counts the body cannot back before the
	// count sizes anything.
	if int64(nSeries)*16 > int64(len(body)-d.off) {
		return nil, fmt.Errorf("tsdb: block claims %d series in %d bytes", nSeries, len(body)-d.off)
	}
	bs.Series = make([]BlockSeries, 0, nSeries)
	for si := uint32(0); si < nSeries; si++ {
		var s BlockSeries
		if s.Key.Node, err = d.str(); err != nil {
			return nil, err
		}
		if s.Key.Metric, err = d.str(); err != nil {
			return nil, err
		}
		rank, err := d.u32()
		if err != nil {
			return nil, err
		}
		tid, err := d.u32()
		if err != nil {
			return nil, err
		}
		s.Key.Rank, s.Key.TID = int(int32(rank)), int(int32(tid))
		nChunks, err := d.u32()
		if err != nil {
			return nil, err
		}
		// A chunk costs at least its fixed header: 36 bytes.
		if int64(nChunks)*36 > int64(len(body)-d.off) {
			return nil, fmt.Errorf("tsdb: series %d claims %d chunks in %d bytes", si, nChunks, len(body)-d.off)
		}
		s.Chunks = make([]BlockChunk, 0, nChunks)
		for ci := uint32(0); ci < nChunks; ci++ {
			var c BlockChunk
			if c.Part, err = d.i64(); err != nil {
				return nil, err
			}
			if c.TMin, err = d.i64(); err != nil {
				return nil, err
			}
			if c.TMax, err = d.i64(); err != nil {
				return nil, err
			}
			count, err := d.u32()
			if err != nil {
				return nil, err
			}
			c.Count = int(count)
			nRoll, err := d.u32()
			if err != nil {
				return nil, err
			}
			// One rollup is 68 fixed bytes.
			if int64(nRoll)*68 > int64(len(body)-d.off) {
				return nil, fmt.Errorf("tsdb: chunk claims %d rollups in %d bytes", nRoll, len(body)-d.off)
			}
			c.Rollups = make([]Rollup, 0, nRoll)
			for ri := uint32(0); ri < nRoll; ri++ {
				var r Rollup
				if r.Bucket, err = d.i64(); err != nil {
					return nil, err
				}
				if r.Count, err = d.u32(); err != nil {
					return nil, err
				}
				if r.Min, err = d.f64(); err != nil {
					return nil, err
				}
				if r.Max, err = d.f64(); err != nil {
					return nil, err
				}
				if r.Sum, err = d.f64(); err != nil {
					return nil, err
				}
				if r.First, err = d.f64(); err != nil {
					return nil, err
				}
				if r.Last, err = d.f64(); err != nil {
					return nil, err
				}
				if r.FirstT, err = d.i64(); err != nil {
					return nil, err
				}
				if r.LastT, err = d.i64(); err != nil {
					return nil, err
				}
				c.Rollups = append(c.Rollups, r)
			}
			dataLen, err := d.u32()
			if err != nil {
				return nil, err
			}
			raw, err := d.need(int(dataLen))
			if err != nil {
				return nil, err
			}
			c.Data = append([]byte(nil), raw...)
			s.Chunks = append(s.Chunks, c)
		}
		bs.Series = append(bs.Series, s)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("tsdb: %d trailing bytes after block set", len(body)-d.off)
	}
	return bs, nil
}
