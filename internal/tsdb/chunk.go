package tsdb

// chunk is one compressed run of a series. While it is the series' head it
// owns live codec state and accepts appends; seal() freezes it — after
// that the data is immutable, safe to read without the owning shard lock,
// and carries rollups so coarse queries never re-decode it.
type chunk struct {
	part   int64 // block this chunk belongs to: floorDiv(first t, block)*block
	w      bitWriter
	st     gState
	count  int
	tMin   int64
	tMax   int64
	sealed bool
	// rollups are per-Downsample-bucket aggregates, sorted by bucket start,
	// computed once at seal.
	rollups []Rollup
}

// Rollup is one downsample bucket's aggregate of a sealed chunk. Sum and
// Count reconstruct the mean; First/Last (with their timestamps) serve
// last-value and delta aggregations without decompression.
type Rollup struct {
	Bucket int64 // bucket start, sample-clock nanos
	Count  uint32
	Min    float64
	Max    float64
	Sum    float64
	First  float64
	Last   float64
	FirstT int64
	LastT  int64
}

// newChunk opens a head chunk for the block containing t.
func newChunk(part int64) *chunk {
	c := &chunk{part: part}
	c.st.init()
	return c
}

// append encodes one sample. Caller (the series) holds the shard lock and
// has already decided this chunk stays open.
//
//zerosum:hotpath
func (c *chunk) append(t int64, v float64) {
	c.st.appendSample(&c.w, c.count, t, v)
	if c.count == 0 || t < c.tMin {
		c.tMin = t
	}
	if c.count == 0 || t > c.tMax {
		c.tMax = t
	}
	c.count++
}

// overlaps reports whether any sample of the chunk can fall in [start, end).
func (c *chunk) overlaps(start, end int64) bool {
	return c.count > 0 && c.tMin < end && c.tMax >= start
}

// bytes is the chunk's current encoded size.
func (c *chunk) bytes() int { return len(c.w.buf) }

// seal freezes the chunk and computes its rollups on ds-wide buckets.
// Sealing decodes the chunk once; it runs when a series crosses a block
// boundary (rate-limited by construction), never on the steady append path.
//
//zerosum:coldpath
func (c *chunk) seal(ds int64) {
	if c.sealed {
		return
	}
	c.sealed = true
	if c.count == 0 {
		return
	}
	// Stragglers can land out of bucket order inside one chunk, so
	// accumulate in a map and sort the survivors.
	acc := make(map[int64]*Rollup)
	var it gIter
	it.init(c.w.bytes(), c.count)
	for it.Next() {
		t, v := it.At()
		bucket := floorDiv(t, ds) * ds
		r := acc[bucket]
		if r == nil {
			r = &Rollup{Bucket: bucket, Min: v, Max: v,
				First: v, Last: v, FirstT: t, LastT: t}
			acc[bucket] = r
		}
		r.Count++
		r.Sum += v
		if v < r.Min {
			r.Min = v
		}
		if v > r.Max {
			r.Max = v
		}
		if t < r.FirstT {
			r.FirstT, r.First = t, v
		}
		if t >= r.LastT {
			r.LastT, r.Last = t, v
		}
	}
	// The chunk encoded its own samples; decoding them back cannot fail.
	// (A decode error here would mean a writer bug, not bad input — the
	// rollups just come out shorter, and queries fall back to raw decode.)
	c.rollups = make([]Rollup, 0, len(acc))
	for _, r := range acc {
		c.rollups = append(c.rollups, *r)
	}
	sortRollups(c.rollups)
}

func sortRollups(rs []Rollup) {
	// Insertion sort: rollup lists are short (block/downsample buckets,
	// 12 at the defaults) and usually already ordered.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Bucket < rs[j-1].Bucket; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
