package tsdb

import (
	"math"
	"math/bits"
)

// Gorilla-style stream codec (Pelkonen et al., "Gorilla: A Fast, Scalable,
// In-Memory Time Series Database", VLDB 2015), adapted to this store's
// nanosecond sample clock:
//
//   - Timestamps are delta-of-delta encoded. The first sample writes its
//     timestamp raw (64 bits); every later sample writes dod = (tᵢ - tᵢ₋₁)
//     - (tᵢ₋₁ - tᵢ₋₂), zigzagged and bucketed by magnitude. A perfectly
//     periodic sampler — the steady state the paper's monitor converges to
//     — emits dod = 0, a single bit per timestamp. The bucket widths are
//     wider than Gorilla's (14/24/40/64 against seconds-resolution 7/9/12/
//     32) because nanosecond jitter is bigger in absolute terms.
//   - Values XOR against their predecessor. An unchanged value is one bit;
//     a changed value writes only the significant window of the XOR,
//     reusing the previous window when it still fits ('10') or declaring a
//     new one ('11' + 5 bits leading + 6 bits length).
//
// dod buckets (after zigzag):
//
//	0                  -> '0'
//	< 2^14             -> '10'   + 14 bits
//	< 2^24             -> '110'  + 24 bits
//	< 2^40             -> '1110' + 40 bits
//	else               -> '1111' + 64 bits
//
// The codec is lossless over (int64, float64): every bit pattern round
// trips, including NaNs, infinities and negative zero, and timestamps may
// go backwards (a late retry of a gap batch lands where it lands) — only
// the encoded size, never correctness, assumes near-monotonic time.

// noWindow marks a value encoder/decoder that has not yet declared a
// significant-bit window ('11' control path).
const noWindow = 0xff

// gState is the shared per-stream codec state.
type gState struct {
	t        int64  // previous timestamp
	tDelta   int64  // previous delta
	vBits    uint64 // previous value's bit pattern
	leading  uint8
	trailing uint8
}

func (s *gState) init() { s.leading = noWindow }

// appendSample encodes one (t, v) against the state into w. n is how many
// samples the stream already holds.
//
//zerosum:hotpath
func (s *gState) appendSample(w *bitWriter, n int, t int64, v float64) {
	vb := math.Float64bits(v)
	if n == 0 {
		w.writeBits(uint64(t), 64)
		w.writeBits(vb, 64)
		s.t, s.tDelta, s.vBits = t, 0, vb
		s.leading = noWindow
		return
	}
	delta := t - s.t
	zz := zigzag(delta - s.tDelta)
	switch {
	case zz == 0:
		w.writeBit(0)
	case zz < 1<<14:
		w.writeBits(0b10, 2)
		w.writeBits(zz, 14)
	case zz < 1<<24:
		w.writeBits(0b110, 3)
		w.writeBits(zz, 24)
	case zz < 1<<40:
		w.writeBits(0b1110, 4)
		w.writeBits(zz, 40)
	default:
		w.writeBits(0b1111, 4)
		w.writeBits(zz, 64)
	}
	s.t, s.tDelta = t, delta

	xor := s.vBits ^ vb
	s.vBits = vb
	if xor == 0 {
		w.writeBit(0)
		return
	}
	w.writeBit(1)
	lead := uint8(bits.LeadingZeros64(xor))
	trail := uint8(bits.TrailingZeros64(xor))
	if lead > 31 {
		lead = 31 // 5-bit field; extra leading zeros ride inside the window
	}
	if s.leading != noWindow && lead >= s.leading && trail >= s.trailing {
		w.writeBit(0)
		w.writeBits(xor>>s.trailing, uint(64-s.leading-s.trailing))
		return
	}
	s.leading, s.trailing = lead, trail
	sig := 64 - lead - trail
	w.writeBit(1)
	w.writeBits(uint64(lead), 5)
	w.writeBits(uint64(sig-1), 6) // sig is 1..64; stored as 0..63
	w.writeBits(xor>>trail, uint(sig))
}

// gIter decodes a Gorilla bitstream of a known sample count. The zero
// value is unusable; call init. It is a value type so scan loops can keep
// it on the stack.
type gIter struct {
	r   bitReader
	st  gState
	n   int // declared sample count
	i   int // samples decoded
	t   int64
	v   float64
	err error
}

func (it *gIter) init(data []byte, count int) {
	*it = gIter{n: count}
	it.r.init(data)
	it.st.init()
}

// Next advances to the next sample; false at the end of the stream or on a
// corrupt bitstream (check Err).
func (it *gIter) Next() bool {
	if it.err != nil || it.i >= it.n {
		return false
	}
	if it.i == 0 {
		tb, err := it.r.readBits(64)
		if err != nil {
			it.err = err
			return false
		}
		vb, err := it.r.readBits(64)
		if err != nil {
			it.err = err
			return false
		}
		it.st.t, it.st.tDelta, it.st.vBits = int64(tb), 0, vb
	} else {
		if err := it.next(); err != nil {
			it.err = err
			return false
		}
	}
	it.t, it.v = it.st.t, math.Float64frombits(it.st.vBits)
	it.i++
	return true
}

func (it *gIter) next() error {
	// Timestamp: unary bucket selector, then the zigzagged dod.
	var width uint
	for i := 0; i < 4; i++ {
		b, err := it.r.readBit()
		if err != nil {
			return err
		}
		if b == 0 {
			break
		}
		width = [...]uint{14, 24, 40, 64}[i]
	}
	var dod int64
	if width > 0 {
		zz, err := it.r.readBits(width)
		if err != nil {
			return err
		}
		dod = unzigzag(zz)
	}
	it.st.tDelta += dod
	it.st.t += it.st.tDelta

	// Value: '0' same, '10' prior window, '11' new window.
	b, err := it.r.readBit()
	if err != nil {
		return err
	}
	if b == 0 {
		return nil
	}
	if b, err = it.r.readBit(); err != nil {
		return err
	}
	if b == 1 {
		lead, err := it.r.readBits(5)
		if err != nil {
			return err
		}
		sigM1, err := it.r.readBits(6)
		if err != nil {
			return err
		}
		sig := uint8(sigM1) + 1
		if uint(lead)+uint(sig) > 64 {
			return errShortChunk // impossible window: corrupt stream
		}
		it.st.leading = uint8(lead)
		it.st.trailing = 64 - uint8(lead) - sig
	} else if it.st.leading == noWindow {
		return errShortChunk // window reuse before any window was declared
	}
	sig := uint(64 - it.st.leading - it.st.trailing)
	xor, err := it.r.readBits(sig)
	if err != nil {
		return err
	}
	it.st.vBits ^= xor << it.st.trailing
	return nil
}

// At returns the current sample.
func (it *gIter) At() (int64, float64) { return it.t, it.v }

// Err reports a corrupt bitstream (nil on clean exhaustion).
func (it *gIter) Err() error { return it.err }
