package tsdb

import (
	"math"
	"math/rand"
	"testing"
)

// roundTrip encodes samples with one gState and decodes them back.
func roundTrip(t *testing.T, samples []Point) []Point {
	t.Helper()
	var w bitWriter
	var st gState
	st.init()
	for i, p := range samples {
		st.appendSample(&w, i, p.T, p.V)
	}
	var it gIter
	it.init(w.bytes(), len(samples))
	out := make([]Point, 0, len(samples))
	for it.Next() {
		pt, v := it.At()
		out = append(out, Point{T: pt, V: v})
	}
	if err := it.Err(); err != nil {
		t.Fatalf("decode failed after %d of %d samples: %v", len(out), len(samples), err)
	}
	return out
}

// sameBits compares float64s by bit pattern, so NaN payloads and negative
// zero count.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func checkLossless(t *testing.T, name string, samples []Point) {
	t.Helper()
	got := roundTrip(t, samples)
	if len(got) != len(samples) {
		t.Fatalf("%s: decoded %d samples, want %d", name, len(got), len(samples))
	}
	for i := range samples {
		if got[i].T != samples[i].T || !sameBits(got[i].V, samples[i].V) {
			t.Fatalf("%s: sample %d round-tripped as (%d, %x), want (%d, %x)",
				name, i, got[i].T, math.Float64bits(got[i].V),
				samples[i].T, math.Float64bits(samples[i].V))
		}
	}
}

func TestCodecLosslessHandPicked(t *testing.T) {
	cases := map[string][]Point{
		"empty":  nil,
		"single": {{T: 123456789, V: 42.5}},
		"periodic-constant": {
			{T: 0, V: 97.0}, {T: 1e9, V: 97.0}, {T: 2e9, V: 97.0}, {T: 3e9, V: 97.0},
		},
		"specials": {
			{T: 0, V: 0}, {T: 1, V: math.Copysign(0, -1)},
			{T: 2, V: math.NaN()}, {T: 3, V: math.Inf(1)},
			{T: 4, V: math.Inf(-1)}, {T: 5, V: math.MaxFloat64},
			{T: 6, V: math.SmallestNonzeroFloat64},
		},
		"backwards-time": {
			{T: 5e9, V: 1}, {T: 6e9, V: 2}, {T: 2e9, V: 3}, {T: 7e9, V: 4},
		},
		"extreme-timestamps": {
			{T: math.MinInt64 / 2, V: 1}, {T: math.MaxInt64 / 2, V: 2}, {T: 0, V: 3},
		},
	}
	for name, samples := range cases {
		checkLossless(t, name, samples)
	}
}

func TestCodecLosslessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		samples := make([]Point, n)
		tNow := rng.Int63n(1 << 40)
		for i := range samples {
			// Mix periodic steps, jitter, and occasional wild jumps in both
			// directions so every dod bucket gets exercised.
			switch rng.Intn(5) {
			case 0:
				tNow += 1e9
			case 1:
				tNow += 1e9 + rng.Int63n(2e6) - 1e6
			case 2:
				tNow += rng.Int63n(1 << 30)
			case 3:
				tNow -= rng.Int63n(1 << 34)
			default:
				tNow += rng.Int63n(1<<50) - 1<<49
			}
			var v float64
			switch rng.Intn(4) {
			case 0:
				v = float64(rng.Intn(100)) // flat-ish gauge
			case 1:
				v = rng.Float64() * 100
			case 2:
				v = math.Float64frombits(rng.Uint64()) // arbitrary bit pattern
			default:
				v = float64(i) // counter
			}
			samples[i] = Point{T: tNow, V: v}
		}
		checkLossless(t, "random", samples)
	}
}

// samplerTrace builds the shape the monitor actually emits: a fixed period
// with bounded scheduler jitter and slowly-moving gauge values.
func samplerTrace(n int, period int64, jitter int64, rng *rand.Rand) []Point {
	samples := make([]Point, n)
	tNow := int64(0)
	v := 25.0
	for i := range samples {
		if i > 0 {
			tNow += period
			if jitter > 0 {
				tNow += rng.Int63n(2*jitter) - jitter
			}
		}
		v += float64(rng.Intn(7)-3) * 0.5
		samples[i] = Point{T: tNow, V: v}
	}
	return samples
}

func TestCodecLosslessSamplerTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkLossless(t, "sampler-jittered", samplerTrace(2000, 1e9, 2e6, rng))
	checkLossless(t, "sampler-exact", samplerTrace(2000, 1e9, 0, rng))
}

// TestCodecBytesPerSample pins the acceptance bound: the steady-state
// sampler trace — the converged periodic regime, one sample per period with
// gauge values that move a little each tick — must compress to at most 2.5
// bytes per sample (Gorilla's headline result is ~1.37 bytes for its
// production workload). A wall-clock trace with scheduler jitter cannot
// reach that on a nanosecond clock — every non-zero delta-of-delta costs a
// 24-bit bucket — so the jittered case gets a looser bound that documents
// the time-dominated cost rather than hiding it.
func TestCodecBytesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, tc := range []struct {
		name   string
		jitter int64
		bound  float64
	}{
		{"steady-state", 0, 2.5},
		{"wallclock-ms-jitter", 2e6, 6.0},
	} {
		samples := samplerTrace(4096, 1e9, tc.jitter, rng)
		var w bitWriter
		var st gState
		st.init()
		for i, p := range samples {
			st.appendSample(&w, i, p.T, p.V)
		}
		got := float64(len(w.bytes())) / float64(len(samples))
		t.Logf("%s: %.3f bytes/sample (%d bytes / %d samples)", tc.name, got, len(w.bytes()), len(samples))
		if got > tc.bound {
			t.Errorf("%s: %.3f bytes/sample exceeds the %.2f bound", tc.name, got, tc.bound)
		}
	}
	// Integer-valued counters (context switches, bytes, faults) are the
	// other big zerosum stream shape; their XOR windows are narrow and the
	// periodic clock is free, so they compress well under a byte.
	var w bitWriter
	var st gState
	st.init()
	for i := 0; i < 4096; i++ {
		st.appendSample(&w, i, int64(i)*1e9, float64(100000+i*3))
	}
	got := float64(len(w.buf)) / 4096
	t.Logf("int-counter: %.3f bytes/sample", got)
	if got > 2.5 {
		t.Errorf("int-counter: %.3f bytes/sample exceeds the 2.50 bound", got)
	}
}

func TestCodecDecoderRejectsTruncation(t *testing.T) {
	samples := samplerTrace(100, 1e9, 1e6, rand.New(rand.NewSource(9)))
	var w bitWriter
	var st gState
	st.init()
	for i, p := range samples {
		st.appendSample(&w, i, p.T, p.V)
	}
	full := w.bytes()
	// Every truncation must either decode a clean prefix or stop with
	// errShortChunk — never panic, never fabricate all n samples from
	// missing bytes. (Zero-bit tails can legitimately decode: a run of
	// '0' control bits means "same dod, same value".)
	for cut := 0; cut < len(full); cut++ {
		var it gIter
		it.init(full[:cut], len(samples))
		n := 0
		for it.Next() {
			n++
		}
		if n > len(samples) {
			t.Fatalf("cut=%d: decoded %d samples from a %d-sample stream", cut, n, len(samples))
		}
	}
	// The full stream with an inflated count must error, not invent data.
	var it gIter
	it.init(full, len(samples)+1000)
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() == nil {
		t.Fatalf("inflated count decoded %d samples with no error", n)
	}
}

func TestTimeConversion(t *testing.T) {
	for _, sec := range []float64{0, 0.25, 1, 59.999999999, 12345.6789} {
		n := TimeToNanos(sec)
		back := NanosToSec(n)
		if math.Abs(back-sec) > 1e-9 {
			t.Errorf("TimeToNanos(%v) = %d -> %v drifted", sec, n, back)
		}
		// The conversion must be idempotent through the store: re-encoding
		// the decoded seconds lands on the same nanos.
		if TimeToNanos(back) != n {
			t.Errorf("conversion not stable for %v: %d vs %d", sec, TimeToNanos(back), n)
		}
	}
}
