package tsdb

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// updateCorpus regenerates the checked-in fuzz seed corpus, mirroring the
// golden files' -update convention.
var updateCorpus = flag.Bool("update", false, "rewrite the checked-in fuzz seed corpus")

// fuzzSeedBlobs builds well-formed block blobs plus near-miss mutations so
// the fuzzer starts past the magic/CRC checks.
func fuzzSeedBlobs(t interface{ Fatalf(string, ...any) }) map[string][]byte {
	st := NewStore(Options{Block: 10 * time.Second, Downsample: 2 * time.Second})
	for r := 0; r < 2; r++ {
		key := SeriesKey{Node: "n00", Rank: r, TID: 1000 + r, Metric: "lwp.nvctx"}
		for i := 0; i < 25; i++ {
			st.Append("fuzz", key, int64(i)*1e9, float64(r*100+i))
		}
	}
	st.Append("fuzz", SeriesKey{Node: "n01", Rank: 2, TID: 3, Metric: "mem.free_kb"},
		5e8, math.Inf(1))
	blob, err := st.MarshalJob("fuzz")
	if err != nil {
		t.Fatalf("seed blob: %v", err)
	}

	empty := NewStore(Options{})
	empty.Append("fuzz", SeriesKey{Node: "n", Metric: "m"}, 0, 0)
	small, err := empty.MarshalJob("fuzz")
	if err != nil {
		t.Fatalf("small seed blob: %v", err)
	}

	truncated := append([]byte(nil), blob[:len(blob)-7]...)
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/3] ^= 0x20
	return map[string][]byte{
		"seed_blocks":    blob,
		"seed_single":    small,
		"seed_truncated": truncated,
		"seed_bitflip":   flipped,
		"seed_magic":     []byte("ZSTB\x01"),
	}
}

// FuzzTSDBBlockDecode throws arbitrary bytes at the block decoder and, for
// anything that decodes, at the chunk bitstream decoder. Invariants: no
// panic, no over-read (hostile counts are rejected before they size
// allocations), and a chunk never yields more samples than its declared
// count.
func FuzzTSDBBlockDecode(f *testing.F) {
	for _, seed := range fuzzSeedBlobs(f) {
		f.Add(seed)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		bs, err := UnmarshalBlocks(data)
		if err != nil {
			return
		}
		// The CRC makes a clean decode of mutated input astronomically
		// unlikely, but the fuzzer can still synthesize valid blobs;
		// everything reachable from one must stay in bounds.
		for _, s := range bs.Series {
			for _, c := range s.Chunks {
				pts, err := c.Samples()
				if len(pts) > c.Count {
					t.Fatalf("chunk decoded %d samples, declared %d", len(pts), c.Count)
				}
				if err == nil && len(pts) != c.Count {
					t.Fatalf("clean decode of %d samples, declared %d", len(pts), c.Count)
				}
			}
		}
	})
}

// TestFuzzSeedCorpus pins the checked-in corpus: every seed decodes (or is
// rejected) without panicking, and the well-formed seeds stay canonical —
// the bytes on disk match what MarshalJob produces today, so a codec or
// layout change that silently invalidates the corpus fails here first.
func TestFuzzSeedCorpus(t *testing.T) {
	seeds := fuzzSeedBlobs(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzTSDBBlockDecode")
	if *updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, blob := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(blob)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, want := range seeds {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate the corpus)", name, err)
		}
		got, err := parseCorpusFile(raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: checked-in corpus drifted from the generator (run with -update)", name)
		}
	}
}

// parseCorpusFile reads the single []byte value of a `go test fuzz v1`
// corpus entry.
func parseCorpusFile(raw []byte) ([]byte, error) {
	s := string(raw)
	const header = "go test fuzz v1\n[]byte("
	if len(s) < len(header) || s[:len(header)] != header {
		return nil, fmt.Errorf("not a go fuzz v1 []byte entry")
	}
	s = s[len(header):]
	if i := len(s) - 1; i >= 0 && s[i] == '\n' {
		s = s[:i]
	}
	if len(s) == 0 || s[len(s)-1] != ')' {
		return nil, fmt.Errorf("unterminated corpus entry")
	}
	v, err := strconv.Unquote(s[:len(s)-1])
	if err != nil {
		return nil, err
	}
	return []byte(v), nil
}
