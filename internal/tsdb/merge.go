package tsdb

import (
	"fmt"
	"sort"
)

// Tree-aggregation support: a fleet of leaf aggregators each holds a slice
// of a job's series, and the root (or an offline audit) needs to combine
// their ZSTB dumps back into one canonical inventory. Two layers:
//
//   - MergeRollups folds bucket-level aggregates without touching sample
//     data — the cheap path when only coarse stats are needed.
//   - MergeBlockSets decodes, dedups and re-chunks full sample streams —
//     the canonical path whose output marshals byte-identically to a flat
//     single-store run over the same samples.
//
// Store.ImportBlockSet replays a decoded set through the normal append
// path, which is what `zsaggd -restore` uses to warm a fresh daemon from
// dumps.

// MergeRollups merges two bucket-sorted rollup lists into one, combining
// entries that share a bucket: counts and sums add, min/max widen, and
// First/Last resolve by their timestamps exactly as seal() would have
// resolved the combined sample stream. Inputs are not mutated.
func MergeRollups(a, b []Rollup) []Rollup {
	out := make([]Rollup, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Bucket < b[j].Bucket:
			out = append(out, a[i])
			i++
		case b[j].Bucket < a[i].Bucket:
			out = append(out, b[j])
			j++
		default:
			out = append(out, combineRollup(a[i], b[j]))
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// combineRollup folds two aggregates of the same bucket.
func combineRollup(x, y Rollup) Rollup {
	r := x
	r.Count += y.Count
	r.Sum += y.Sum
	if y.Min < r.Min {
		r.Min = y.Min
	}
	if y.Max > r.Max {
		r.Max = y.Max
	}
	if y.FirstT < r.FirstT {
		r.FirstT, r.First = y.FirstT, y.First
	}
	// seal() lets a tie go to the later-seen sample; with two independent
	// chunks "later-seen" is undefined, so ties keep x's last deliberately.
	if y.LastT > r.LastT {
		r.LastT, r.Last = y.LastT, y.Last
	}
	return r
}

// MergeBlockSets combines the block inventories of one job — typically the
// per-leaf ZSTB dumps of an aggregation tree — into a single canonical
// set. Every chunk is decoded; samples that appear in several sets with
// the same (series, timestamp) identity are kept once (first set wins,
// which makes replaying an agent's stream through two leaf incarnations
// idempotent); the survivors are re-chunked in time order under opts'
// block and downsample widths. Marshalling the result therefore yields
// the same bytes as dumping a flat store that ingested the samples once
// in time order. Nil sets are skipped; differing job names are an error.
func MergeBlockSets(opts Options, sets ...*BlockSet) (*BlockSet, error) {
	opts = opts.withDefaults()
	out := &BlockSet{}
	samples := make(map[SeriesKey][]Point)
	seen := make(map[SeriesKey]map[int64]bool)
	for _, bs := range sets {
		if bs == nil {
			continue
		}
		if out.Job == "" {
			out.Job = bs.Job
		} else if bs.Job != "" && bs.Job != out.Job {
			return nil, fmt.Errorf("tsdb: merging block sets of different jobs %q and %q", out.Job, bs.Job)
		}
		for si := range bs.Series {
			s := &bs.Series[si]
			ts := seen[s.Key]
			if ts == nil {
				ts = make(map[int64]bool)
				seen[s.Key] = ts
			}
			for ci := range s.Chunks {
				pts, err := s.Chunks[ci].Samples()
				if err != nil {
					return nil, fmt.Errorf("tsdb: series %v chunk %d: %w", s.Key, ci, err)
				}
				for _, p := range pts {
					if ts[p.T] {
						continue
					}
					ts[p.T] = true
					samples[s.Key] = append(samples[s.Key], p)
				}
			}
		}
	}
	block, ds := int64(opts.Block), int64(opts.Downsample)
	for key, pts := range samples {
		sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
		// Re-chunk through the store's own series machinery so boundaries,
		// rollups and bitstreams come out exactly as a flat ingest would
		// have produced them. The final chunk stays an unsealed head,
		// mirroring what snapshotBlocks captures from a live store.
		s := &Series{Key: key}
		for _, p := range pts {
			s.append(p.T, p.V, block, ds, -1)
		}
		fs := BlockSeries{Key: key}
		s.chunks(func(c *chunk) {
			if c.count == 0 {
				return
			}
			fs.Chunks = append(fs.Chunks, BlockChunk{Part: c.part, TMin: c.tMin,
				TMax: c.tMax, Count: c.count, Rollups: c.rollups, Data: c.w.bytes()})
		})
		if len(fs.Chunks) > 0 {
			out.Series = append(out.Series, fs)
		}
	}
	sort.Slice(out.Series, func(i, j int) bool { return keyLess(out.Series[i].Key, out.Series[j].Key) })
	return out, nil
}

// ImportBlockSet replays a decoded block set through the store's normal
// append path, creating the job and its series as needed. Chunks decode
// oldest-first and samples replay in their stored order, so a dump of a
// healthy store re-imports into an equivalent one. Returns the number of
// samples landed; a corrupt bitstream stops the import mid-series with
// the count so far.
func (st *Store) ImportBlockSet(bs *BlockSet) (int, error) {
	if bs == nil {
		return 0, nil
	}
	n := 0
	for si := range bs.Series {
		s := &bs.Series[si]
		for ci := range s.Chunks {
			pts, err := s.Chunks[ci].Samples()
			for _, p := range pts {
				st.Append(bs.Job, s.Key, p.T, p.V)
				n++
			}
			if err != nil {
				return n, fmt.Errorf("tsdb: import series %v chunk %d: %w", s.Key, ci, err)
			}
		}
	}
	return n, nil
}
