package tsdb

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// bucketize computes a point list's per-bucket aggregates by the same rules
// seal uses, as an independent reference for MergeRollups.
func bucketize(ds int64, pts []Point) []Rollup {
	acc := make(map[int64]*Rollup)
	for _, p := range pts {
		bucket := floorDiv(p.T, ds) * ds
		r := acc[bucket]
		if r == nil {
			r = &Rollup{Bucket: bucket, Min: p.V, Max: p.V,
				First: p.V, Last: p.V, FirstT: p.T, LastT: p.T}
			acc[bucket] = r
		}
		r.Count++
		r.Sum += p.V
		if p.V < r.Min {
			r.Min = p.V
		}
		if p.V > r.Max {
			r.Max = p.V
		}
		if p.T < r.FirstT {
			r.FirstT, r.First = p.T, p.V
		}
		if p.T >= r.LastT {
			r.LastT, r.Last = p.T, p.V
		}
	}
	out := make([]Rollup, 0, len(acc))
	for _, r := range acc {
		out = append(out, *r)
	}
	sortRollups(out)
	return out
}

// TestMergeRollups splits one sample stream across two rollup lists every
// way that matters — disjoint buckets, shared buckets, empty sides — and
// checks the merge equals the aggregates of the combined stream.
func TestMergeRollups(t *testing.T) {
	const ds = int64(10)
	// Timestamps are all distinct, so First/Last resolution is unambiguous
	// and the reference cannot depend on visit order.
	var a, b []Point
	for i := int64(0); i < 40; i++ {
		p := Point{T: i*3 + 1, V: float64((i*7)%13) - 5}
		if i%3 == 0 {
			a = append(a, p)
		} else {
			b = append(b, p)
		}
	}
	// One bucket only a holds, one only b holds.
	a = append(a, Point{T: 500, V: 2})
	b = append(b, Point{T: 600, V: -9})

	got := MergeRollups(bucketize(ds, a), bucketize(ds, b))
	want := bucketize(ds, append(append([]Point(nil), a...), b...))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged rollups diverge from combined-stream aggregates:\n got %+v\nwant %+v", got, want)
	}

	if got := MergeRollups(nil, bucketize(ds, b)); !reflect.DeepEqual(got, bucketize(ds, b)) {
		t.Fatal("merging with an empty left side is not identity")
	}
	if got := MergeRollups(bucketize(ds, a), nil); !reflect.DeepEqual(got, bucketize(ds, a)) {
		t.Fatal("merging with an empty right side is not identity")
	}
}

// mergeTestSamples is a deterministic multi-series sample stream that
// crosses several block boundaries (and therefore seals chunks) at the
// test's 10s block / 2s downsample options.
func mergeTestSamples() map[SeriesKey][]Point {
	out := make(map[SeriesKey][]Point)
	for r := 0; r < 3; r++ {
		for _, metric := range []string{"lwp.user_pct", "mem.free_kb"} {
			key := SeriesKey{Node: fmt.Sprintf("n%02d", r%2), Rank: r, TID: 100 + r, Metric: metric}
			for i := 0; i < 120; i++ {
				out[key] = append(out[key], Point{
					T: int64(i) * 5e8, // 0.5s cadence: 60s of data, 6 block crossings
					V: float64(r*1000+i) + 0.25,
				})
			}
		}
	}
	return out
}

// TestMergeBlockSetsByteIdentity is the canonicality gate for the tree's
// storage layer: per-leaf dumps — with every sample present on exactly one
// leaf, plus some present on BOTH (an agent stream replayed through two
// leaf incarnations) — merge into a block set that marshals byte-identical
// to a flat store that ingested the stream once.
func TestMergeBlockSetsByteIdentity(t *testing.T) {
	opts := Options{Block: 10 * time.Second, Downsample: 2 * time.Second}
	flat := NewStore(opts)
	leafA := NewStore(opts)
	leafB := NewStore(opts)

	for key, pts := range mergeTestSamples() {
		for i, p := range pts {
			flat.Append("job", key, p.T, p.V)
			// Interleave ownership by time; every 10th sample lands on both
			// leaves to exercise the (series, timestamp) dedup.
			if i%2 == 0 || i%10 == 0 {
				leafA.Append("job", key, p.T, p.V)
			}
			if i%2 == 1 || i%10 == 0 {
				leafB.Append("job", key, p.T, p.V)
			}
		}
	}

	dump := func(st *Store) *BlockSet {
		t.Helper()
		blob, err := st.MarshalJob("job")
		if err != nil {
			t.Fatal(err)
		}
		bs, err := UnmarshalBlocks(blob)
		if err != nil {
			t.Fatal(err)
		}
		return bs
	}

	merged, err := MergeBlockSets(opts, dump(leafA), dump(leafB))
	if err != nil {
		t.Fatal(err)
	}
	mergedBlob, err := marshalBlockSet(merged)
	if err != nil {
		t.Fatal(err)
	}
	flatBlob, err := flat.MarshalJob("job")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedBlob, flatBlob) {
		t.Fatalf("merged leaf dumps are not byte-identical to the flat store "+
			"(merged %d bytes, flat %d bytes)", len(mergedBlob), len(flatBlob))
	}

	// Nil sets are skipped; merging a dump with nothing is still canonical.
	solo, err := MergeBlockSets(opts, nil, dump(flat))
	if err != nil {
		t.Fatal(err)
	}
	soloBlob, err := marshalBlockSet(solo)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(soloBlob, flatBlob) {
		t.Fatal("identity merge of a flat dump is not byte-identical")
	}

	if _, err := MergeBlockSets(opts, dump(leafA), &BlockSet{Job: "other"}); err == nil {
		t.Fatal("merging block sets of different jobs did not error")
	}
}

// TestImportBlockSetRoundTrip replays a dump into a fresh store and checks
// the re-import is equivalent: same marshalled bytes under the same
// options, same sample count.
func TestImportBlockSetRoundTrip(t *testing.T) {
	opts := Options{Block: 10 * time.Second, Downsample: 2 * time.Second}
	src := NewStore(opts)
	n := 0
	for key, pts := range mergeTestSamples() {
		for _, p := range pts {
			src.Append("job", key, p.T, p.V)
			n++
		}
	}
	blob, err := src.MarshalJob("job")
	if err != nil {
		t.Fatal(err)
	}
	bs, err := UnmarshalBlocks(blob)
	if err != nil {
		t.Fatal(err)
	}

	dst := NewStore(opts)
	imported, err := dst.ImportBlockSet(bs)
	if err != nil {
		t.Fatal(err)
	}
	if imported != n {
		t.Fatalf("imported %d samples, want %d", imported, n)
	}
	again, err := dst.MarshalJob("job")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, blob) {
		t.Fatal("re-imported store marshals differently from the original dump")
	}

	if imported, err := dst.ImportBlockSet(nil); imported != 0 || err != nil {
		t.Fatalf("nil import: %d, %v", imported, err)
	}
}
