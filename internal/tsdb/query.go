package tsdb

import (
	"fmt"
	"math"
	"sort"
)

// AggKind selects how samples inside one step bucket (or one top-k window)
// reduce to a value.
type AggKind int

// Aggregations.
const (
	AggMean AggKind = iota
	AggMin
	AggMax
	AggSum
	AggCount
	AggLast
	AggDelta // last - first: the rate numerator for cumulative counters
)

var aggNames = map[string]AggKind{
	"mean": AggMean, "min": AggMin, "max": AggMax, "sum": AggSum,
	"count": AggCount, "last": AggLast, "delta": AggDelta,
}

// ParseAgg resolves an aggregation name ("" means mean).
func ParseAgg(s string) (AggKind, error) {
	if s == "" {
		return AggMean, nil
	}
	k, ok := aggNames[s]
	if !ok {
		return 0, fmt.Errorf("tsdb: unknown aggregation %q (want mean|min|max|sum|count|last|delta)", s)
	}
	return k, nil
}

// String names the aggregation for response rendering.
func (k AggKind) String() string {
	for name, v := range aggNames {
		if v == k {
			return name
		}
	}
	return "mean"
}

// maxQueryBuckets bounds one query's bucket allocation so a tiny step over
// a huge window cannot size an arbitrary slice.
const maxQueryBuckets = 1 << 20

// QueryOpts selects series and shapes the evaluation. The window is
// half-open: [Start, End) on the sample clock.
type QueryOpts struct {
	Metric string // required, exact match
	Node   string // "" matches every node
	Rank   int    // -1 matches every rank
	TID    int    // -1 matches every tid
	Start  int64
	End    int64
	// Step > 0 buckets the window into [Start+i*Step, Start+(i+1)*Step) and
	// reduces each bucket with Agg; Step == 0 returns raw samples.
	Step int64
	Agg  AggKind
}

func (o QueryOpts) matches(key SeriesKey) bool {
	return key.Metric == o.Metric &&
		(o.Node == "" || key.Node == o.Node) &&
		(o.Rank < 0 || key.Rank == o.Rank) &&
		(o.TID < 0 || key.TID == o.TID)
}

func (o QueryOpts) validate() (nBuckets int64, err error) {
	if o.Metric == "" {
		return 0, fmt.Errorf("tsdb: query needs a metric")
	}
	if o.End <= o.Start {
		return 0, fmt.Errorf("tsdb: empty window [%d, %d)", o.Start, o.End)
	}
	if o.Step < 0 {
		return 0, fmt.Errorf("tsdb: negative step %d", o.Step)
	}
	if o.Step == 0 {
		return 0, nil
	}
	n := (o.End - o.Start + o.Step - 1) / o.Step
	if n > maxQueryBuckets {
		return 0, fmt.Errorf("tsdb: %d buckets exceeds %d (widen the step)", n, maxQueryBuckets)
	}
	return n, nil
}

// SeriesResult is one series' slice of a query answer.
type SeriesResult struct {
	Key    SeriesKey
	Points []Point
}

// Query evaluates opts over one job. Raw queries (Step == 0) return
// time-sorted samples inside the window; stepped queries return one point
// per non-empty bucket, stamped with the bucket start. Results are sorted
// by (rank, node, tid). Only chunks overlapping the window are read, and
// sealed chunks are folded from their rollups whenever the step grid
// aligns with the downsample grid — the compressed bitstream stays
// untouched for those.
func (st *Store) Query(job string, opts QueryOpts) ([]SeriesResult, error) {
	nBuckets, err := opts.validate()
	if err != nil {
		return nil, err
	}
	db := st.lookupJob(job)
	if db == nil {
		return nil, nil
	}
	var out []SeriesResult
	ds := int64(st.opts.Downsample)
	//zerosum:locked seriesShard.mu eachShard holds the shard lock around fn
	db.eachShard(func(sh *seriesShard) {
		for key, s := range sh.series {
			if !opts.matches(key) {
				continue
			}
			pts := evalSeries(s, opts, nBuckets, ds)
			if len(pts) > 0 {
				out = append(out, SeriesResult{Key: key, Points: pts})
			}
		}
	})
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out, nil
}

func keyLess(a, b SeriesKey) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.TID != b.TID {
		return a.TID < b.TID
	}
	return a.Metric < b.Metric
}

// bucketAcc accumulates one step bucket.
type bucketAcc struct {
	count  uint64
	min    float64
	max    float64
	sum    float64
	first  float64
	last   float64
	firstT int64
	lastT  int64
}

func (b *bucketAcc) addSample(t int64, v float64) {
	if b.count == 0 {
		b.min, b.max, b.first, b.last = v, v, v, v
		b.firstT, b.lastT = t, t
	} else {
		if v < b.min {
			b.min = v
		}
		if v > b.max {
			b.max = v
		}
		if t < b.firstT {
			b.firstT, b.first = t, v
		}
		if t >= b.lastT {
			b.lastT, b.last = t, v
		}
	}
	b.count++
	b.sum += v
}

func (b *bucketAcc) addRollup(r *Rollup) {
	if b.count == 0 {
		b.min, b.max = r.Min, r.Max
		b.first, b.firstT = r.First, r.FirstT
		b.last, b.lastT = r.Last, r.LastT
	} else {
		if r.Min < b.min {
			b.min = r.Min
		}
		if r.Max > b.max {
			b.max = r.Max
		}
		if r.FirstT < b.firstT {
			b.firstT, b.first = r.FirstT, r.First
		}
		if r.LastT >= b.lastT {
			b.lastT, b.last = r.LastT, r.Last
		}
	}
	b.count += uint64(r.Count)
	b.sum += r.Sum
}

func (b *bucketAcc) value(agg AggKind) float64 {
	switch agg {
	case AggMin:
		return b.min
	case AggMax:
		return b.max
	case AggSum:
		return b.sum
	case AggCount:
		return float64(b.count)
	case AggLast:
		return b.last
	case AggDelta:
		return b.last - b.first
	default:
		return b.sum / float64(b.count)
	}
}

// evalSeries answers opts for one series. The caller holds the shard lock,
// so the head chunk is stable; sealed chunks are immutable anyway.
func evalSeries(s *Series, opts QueryOpts, nBuckets int64, ds int64) []Point {
	if opts.Step == 0 {
		return evalRaw(s, opts)
	}
	buckets := make([]bucketAcc, nBuckets)
	rollupOK := opts.Step%ds == 0 && opts.Start%ds == 0
	s.chunks(func(c *chunk) {
		if !c.overlaps(opts.Start, opts.End) {
			return
		}
		// Rollup fast path: every rollup bucket nests inside exactly one
		// step bucket when the grids align and the chunk sits fully inside
		// the window; otherwise decode the overlap.
		if rollupOK && c.sealed && c.rollups != nil &&
			c.tMin >= opts.Start && c.tMax < opts.End {
			for i := range c.rollups {
				r := &c.rollups[i]
				buckets[(r.Bucket-opts.Start)/opts.Step].addRollup(r)
			}
			return
		}
		var it gIter
		it.init(c.w.bytes(), c.count)
		for it.Next() {
			t, v := it.At()
			if t < opts.Start || t >= opts.End {
				continue
			}
			buckets[(t-opts.Start)/opts.Step].addSample(t, v)
		}
	})
	var pts []Point
	for i := range buckets {
		if buckets[i].count == 0 {
			continue
		}
		pts = append(pts, Point{T: opts.Start + int64(i)*opts.Step, V: buckets[i].value(opts.Agg)})
	}
	return pts
}

func evalRaw(s *Series, opts QueryOpts) []Point {
	var pts []Point
	sorted := true
	s.chunks(func(c *chunk) {
		if !c.overlaps(opts.Start, opts.End) {
			return
		}
		var it gIter
		it.init(c.w.bytes(), c.count)
		for it.Next() {
			t, v := it.At()
			if t < opts.Start || t >= opts.End {
				continue
			}
			if len(pts) > 0 && t < pts[len(pts)-1].T {
				sorted = false
			}
			pts = append(pts, Point{T: t, V: v})
		}
	})
	if !sorted {
		sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	}
	return pts
}

// HeatmapResult is a (series × step-bucket) matrix slice of one metric:
// Figure 6/7's utilization-over-time view across an allocation. Values
// holds NaN for buckets with no samples; JSON renderers turn those into
// null.
type HeatmapResult struct {
	Rows    []SeriesKey
	Buckets int64
	Values  [][]float64
}

// Heatmap evaluates a stepped query and arranges it as a dense matrix.
// Step must be > 0.
func (st *Store) Heatmap(job string, opts QueryOpts) (*HeatmapResult, error) {
	if opts.Step <= 0 {
		return nil, fmt.Errorf("tsdb: heatmap needs a positive step")
	}
	nBuckets := (opts.End - opts.Start + opts.Step - 1) / opts.Step
	series, err := st.Query(job, opts)
	if err != nil {
		return nil, err
	}
	hm := &HeatmapResult{Buckets: nBuckets}
	for _, sr := range series {
		row := make([]float64, nBuckets)
		for i := range row {
			row[i] = math.NaN()
		}
		for _, p := range sr.Points {
			row[(p.T-opts.Start)/opts.Step] = p.V
		}
		hm.Rows = append(hm.Rows, sr.Key)
		hm.Values = append(hm.Values, row)
	}
	return hm, nil
}

// TopEntry is one series' standing in a top-k answer.
type TopEntry struct {
	Key   SeriesKey
	Value float64
}

// TopK ranks the matching series by one aggregate over the whole window
// (e.g. most-stalled LWPs: metric lwp.stalled, AggSum; hottest context
// switchers: metric lwp.nvctx, AggDelta) and returns the k highest.
func (st *Store) TopK(job string, opts QueryOpts, k int) ([]TopEntry, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tsdb: top-k needs k > 0")
	}
	// One bucket spanning the window reduces each series to a scalar.
	opts.Step = opts.End - opts.Start
	series, err := st.Query(job, opts)
	if err != nil {
		return nil, err
	}
	entries := make([]TopEntry, 0, len(series))
	for _, sr := range series {
		if len(sr.Points) > 0 {
			entries = append(entries, TopEntry{Key: sr.Key, Value: sr.Points[0].V})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Value != entries[j].Value {
			return entries[i].Value > entries[j].Value
		}
		return keyLess(entries[i].Key, entries[j].Key)
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	return entries, nil
}
