package tsdb

import (
	"math"
	"testing"
	"time"
)

// fill loads a deterministic pattern: ranks 0..nRanks-1, one series each,
// one sample per second, value = rank*offset + second.
func fill(st *Store, job, metric string, nRanks, seconds int, offset float64) {
	for r := 0; r < nRanks; r++ {
		key := SeriesKey{Node: "node0", Rank: r, TID: 1000 + r, Metric: metric}
		for i := 0; i < seconds; i++ {
			st.Append(job, key, int64(i)*1e9, float64(r)*offset+float64(i))
		}
	}
}

func TestQueryValidation(t *testing.T) {
	st := NewStore(Options{})
	for name, opts := range map[string]QueryOpts{
		"no-metric":    {Start: 0, End: 10},
		"empty-window": {Metric: "m", Start: 10, End: 10},
		"neg-step":     {Metric: "m", Start: 0, End: 10, Step: -1},
		"bucket-bomb":  {Metric: "m", Start: 0, End: 1 << 50, Step: 1},
	} {
		if _, err := st.Query("j", opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Unknown jobs answer empty, not an error: the aggregator's handlers
	// 404 on their own terms.
	if res, err := st.Query("ghost", QueryOpts{Metric: "m", Rank: -1, TID: -1, Start: 0, End: 10}); err != nil || res != nil {
		t.Fatalf("ghost job: %v %v", res, err)
	}
}

func TestQueryRawAndFilters(t *testing.T) {
	st := NewStore(Options{Block: time.Minute})
	fill(st, "j", "lwp.user_pct", 4, 30, 1000)
	st.Append("j", SeriesKey{Node: "node1", Rank: 9, TID: 9, Metric: "other"}, 0, 1)

	res, err := st.Query("j", QueryOpts{Metric: "lwp.user_pct", Rank: -1, TID: -1, Start: 0, End: 30e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d series, want 4", len(res))
	}
	for r, sr := range res {
		if sr.Key.Rank != r {
			t.Fatalf("series %d has rank %d (order broken)", r, sr.Key.Rank)
		}
		if len(sr.Points) != 30 {
			t.Fatalf("rank %d: %d raw points, want 30", r, len(sr.Points))
		}
		for i, p := range sr.Points {
			if p.T != int64(i)*1e9 || p.V != float64(r*1000+i) {
				t.Fatalf("rank %d point %d = %+v", r, i, p)
			}
		}
	}

	// Window clipping is half-open.
	res, err = st.Query("j", QueryOpts{Metric: "lwp.user_pct", Rank: 2, TID: -1, Start: 5e9, End: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Points) != 5 {
		t.Fatalf("clip: %+v", res)
	}
	if res[0].Points[0].T != 5e9 || res[0].Points[4].T != 9e9 {
		t.Fatalf("clip bounds: %+v", res[0].Points)
	}

	// Rank + TID filters.
	res, err = st.Query("j", QueryOpts{Metric: "lwp.user_pct", Rank: -1, TID: 1003, Start: 0, End: 30e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Key.Rank != 3 {
		t.Fatalf("tid filter: %+v", res)
	}
	res, err = st.Query("j", QueryOpts{Metric: "lwp.user_pct", Node: "node-else", Rank: -1, TID: -1, Start: 0, End: 30e9})
	if err != nil || len(res) != 0 {
		t.Fatalf("node filter: %v %v", res, err)
	}
}

func TestQuerySteppedAggregations(t *testing.T) {
	st := NewStore(Options{Block: time.Minute, Downsample: 5 * time.Second})
	// One series, values 0..29 at seconds 0..29.
	fill(st, "j", "m", 1, 30, 0)
	q := func(agg AggKind) []Point {
		res, err := st.Query("j", QueryOpts{
			Metric: "m", Rank: -1, TID: -1,
			Start: 0, End: 30e9, Step: 10e9, Agg: agg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || len(res[0].Points) != 3 {
			t.Fatalf("agg %v: %+v", agg, res)
		}
		return res[0].Points
	}
	check := func(agg AggKind, want [3]float64) {
		t.Helper()
		pts := q(agg)
		for i := range want {
			if pts[i].T != int64(i)*10e9 || pts[i].V != want[i] {
				t.Fatalf("agg %v bucket %d = %+v, want V=%v", agg, i, pts[i], want[i])
			}
		}
	}
	check(AggMean, [3]float64{4.5, 14.5, 24.5})
	check(AggMin, [3]float64{0, 10, 20})
	check(AggMax, [3]float64{9, 19, 29})
	check(AggSum, [3]float64{45, 145, 245})
	check(AggCount, [3]float64{10, 10, 10})
	check(AggLast, [3]float64{9, 19, 29})
	check(AggDelta, [3]float64{9, 9, 9})
}

// TestQueryRollupMatchesRaw is the load-bearing equivalence: for aligned
// steps over sealed chunks the rollup fast path must produce exactly what
// decoding would, for every aggregation.
func TestQueryRollupMatchesRaw(t *testing.T) {
	// Block 10s, downsample 2s: sealing happens often, and step 10s aligns.
	st := NewStore(Options{Block: 10 * time.Second, Downsample: 2 * time.Second})
	fill(st, "j", "m", 3, 95, 100) // 9 sealed blocks + live head per series
	js := st.JobStats("j")
	if js.SealedChunks < 9*3 {
		t.Fatalf("want sealed chunks to exercise the fast path, got %d", js.SealedChunks)
	}
	for _, agg := range []AggKind{AggMean, AggMin, AggMax, AggSum, AggCount, AggLast, AggDelta} {
		aligned, err := st.Query("j", QueryOpts{
			Metric: "m", Rank: -1, TID: -1,
			Start: 0, End: 95e9, Step: 10e9, Agg: agg,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Misaligned start forces the decode path for the same buckets
		// shifted by 1s; instead compare against a manual recompute.
		for _, sr := range aligned {
			r := sr.Key.Rank
			for _, p := range sr.Points {
				lo := int(p.T / 1e9)
				hi := lo + 10
				if hi > 95 {
					hi = 95
				}
				var acc bucketAcc
				for i := lo; i < hi; i++ {
					acc.addSample(int64(i)*1e9, float64(r*100+i))
				}
				want := acc.value(agg)
				if p.V != want && !(math.IsNaN(p.V) && math.IsNaN(want)) {
					t.Fatalf("agg %v rank %d bucket %d: fast path %v, manual %v", agg, r, p.T, p.V, want)
				}
			}
		}
	}
}

func TestQueryMisalignedStepDecodes(t *testing.T) {
	st := NewStore(Options{Block: 10 * time.Second, Downsample: 2 * time.Second})
	fill(st, "j", "m", 1, 40, 0)
	// Step 7s does not divide by the 2s downsample: every bucket must come
	// from raw decode and still be exact.
	res, err := st.Query("j", QueryOpts{
		Metric: "m", Rank: -1, TID: -1, Start: 0, End: 40e9, Step: 7e9, Agg: AggSum,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := res[0].Points
	if len(pts) != 6 {
		t.Fatalf("%d buckets, want 6", len(pts))
	}
	for i, p := range pts {
		lo := i * 7
		hi := lo + 7
		if hi > 40 {
			hi = 40
		}
		want := 0.0
		for v := lo; v < hi; v++ {
			want += float64(v)
		}
		if p.V != want {
			t.Fatalf("bucket %d: %v, want %v", i, p.V, want)
		}
	}
}

func TestQueryEmptyBucketsOmitted(t *testing.T) {
	st := NewStore(Options{Block: time.Minute})
	key := SeriesKey{Node: "n", Rank: 0, TID: 0, Metric: "m"}
	st.Append("j", key, 1e9, 1)
	st.Append("j", key, 50e9, 2)
	res, err := st.Query("j", QueryOpts{
		Metric: "m", Rank: -1, TID: -1, Start: 0, End: 60e9, Step: 10e9, Agg: AggMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := res[0].Points
	if len(pts) != 2 || pts[0].T != 0 || pts[1].T != 50e9 {
		t.Fatalf("sparse buckets: %+v", pts)
	}
}

func TestQueryOutOfOrderSamples(t *testing.T) {
	st := NewStore(Options{Block: time.Minute})
	key := SeriesKey{Node: "n", Rank: 0, TID: 0, Metric: "m"}
	// A straggler lands after newer samples (late retry of a gap batch).
	for _, sec := range []int64{10, 11, 12, 5, 13} {
		st.Append("j", key, sec*1e9, float64(sec))
	}
	res, err := st.Query("j", QueryOpts{Metric: "m", Rank: -1, TID: -1, Start: 0, End: 60e9})
	if err != nil {
		t.Fatal(err)
	}
	pts := res[0].Points
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			t.Fatalf("raw result not sorted: %+v", pts)
		}
	}
	// AggLast keys on timestamp, not append order.
	res, err = st.Query("j", QueryOpts{
		Metric: "m", Rank: -1, TID: -1, Start: 0, End: 60e9, Step: 60e9, Agg: AggLast,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Points[0].V; got != 13 {
		t.Fatalf("AggLast = %v, want 13", got)
	}
}

func TestHeatmap(t *testing.T) {
	st := NewStore(Options{Block: time.Minute, Downsample: 5 * time.Second})
	fill(st, "j", "hwt.idle_pct", 3, 30, 10)
	hm, err := st.Heatmap("j", QueryOpts{
		Metric: "hwt.idle_pct", Rank: -1, TID: -1,
		Start: 0, End: 30e9, Step: 10e9, Agg: AggMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hm.Rows) != 3 || hm.Buckets != 3 {
		t.Fatalf("heatmap %dx%d", len(hm.Rows), hm.Buckets)
	}
	for r, row := range hm.Values {
		for b, v := range row {
			want := float64(r*10) + float64(b*10) + 4.5
			if v != want {
				t.Fatalf("cell [%d][%d] = %v, want %v", r, b, v, want)
			}
		}
	}
	// Gaps become NaN cells.
	st.Append("j", SeriesKey{Node: "n2", Rank: 7, TID: 7, Metric: "sparse"}, 25e9, 1)
	hm, err = st.Heatmap("j", QueryOpts{
		Metric: "sparse", Rank: -1, TID: -1, Start: 0, End: 30e9, Step: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := hm.Values[0]
	if !math.IsNaN(row[0]) || !math.IsNaN(row[1]) || row[2] != 1 {
		t.Fatalf("sparse row = %v", row)
	}
	if _, err := st.Heatmap("j", QueryOpts{Metric: "m", Start: 0, End: 1}); err == nil {
		t.Fatal("heatmap without step accepted")
	}
}

func TestTopK(t *testing.T) {
	st := NewStore(Options{Block: time.Minute})
	// Rank r's counter ends at r*100: delta over the window ranks 3,2,1,0.
	for r := 0; r < 4; r++ {
		key := SeriesKey{Node: "n", Rank: r, TID: 1000 + r, Metric: "lwp.nvctx"}
		for i := 0; i <= 10; i++ {
			st.Append("j", key, int64(i)*1e9, float64(r*10*i))
		}
	}
	top, err := st.TopK("j", QueryOpts{
		Metric: "lwp.nvctx", Rank: -1, TID: -1,
		Start: 0, End: 11e9, Agg: AggDelta,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d entries", len(top))
	}
	if top[0].Key.Rank != 3 || top[0].Value != 300 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Key.Rank != 2 || top[1].Value != 200 {
		t.Fatalf("top[1] = %+v", top[1])
	}
	// k larger than the field returns everything; ties break by key order.
	top, err = st.TopK("j", QueryOpts{
		Metric: "lwp.nvctx", Rank: -1, TID: -1, Start: 0, End: 11e9, Agg: AggCount,
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 4 {
		t.Fatalf("got %d entries", len(top))
	}
	for i, e := range top {
		if e.Key.Rank != i || e.Value != 11 {
			t.Fatalf("tie order broken: %+v", top)
		}
	}
	if _, err := st.TopK("j", QueryOpts{Metric: "m", Start: 0, End: 1}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestParseAgg(t *testing.T) {
	for name, want := range aggNames {
		got, err := ParseAgg(name)
		if err != nil || got != want {
			t.Fatalf("ParseAgg(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	if got, err := ParseAgg(""); err != nil || got != AggMean {
		t.Fatalf("empty agg: %v %v", got, err)
	}
	if _, err := ParseAgg("median"); err == nil {
		t.Fatal("unknown agg accepted")
	}
}
