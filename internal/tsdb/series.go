package tsdb

// Series is one metric stream's storage: an appending head chunk plus the
// sealed, immutable chunks behind it. All mutation happens under the
// owning shard's lock in the Store; the methods here do no locking of
// their own, which is what lets the hot append path stay lock- and
// allocation-free.
type Series struct {
	Key SeriesKey

	head    *chunk
	sealed  []*chunk
	samples uint64 // appended over the series' lifetime
}

// evicted reports what retention dropped in one append.
type evicted struct {
	chunks  int
	samples int
}

// append lands one sample, sealing the head into a block and enforcing
// retention when the sample clock crosses a block boundary. block, ds and
// cutoff come resolved from the store so the steady path does no option
// math. cutoff < 0 disables retention. The caller holds the shard lock.
//
//zerosum:hotpath
func (s *Series) append(t int64, v float64, block, ds, cutoff int64) evicted {
	var ev evicted
	h := s.head
	if h == nil {
		h = newChunk(floorDiv(t, block) * block)
		s.head = h
	} else if t >= h.part+block && h.count > 0 || h.count >= maxChunkSamples {
		// Forward boundary crossing (or a full chunk) seals; a straggler
		// older than the head's block still lands in the head, because a
		// sealed chunk is immutable by contract.
		h.seal(ds)
		s.sealed = append(s.sealed, h)
		ev = s.retain(cutoff)
		h = newChunk(floorDiv(t, block) * block)
		s.head = h
	}
	h.append(t, v)
	s.samples++
	return ev
}

// retain drops sealed chunks whose newest sample predates cutoff. It runs
// at seal points and from EnforceRetention, never on the steady path.
//
//zerosum:coldpath
func (s *Series) retain(cutoff int64) evicted {
	var ev evicted
	if cutoff < 0 || len(s.sealed) == 0 {
		return ev
	}
	keep := s.sealed[:0]
	for _, c := range s.sealed {
		if c.tMax < cutoff {
			ev.chunks++
			ev.samples += c.count
			continue
		}
		keep = append(keep, c)
	}
	for i := len(keep); i < len(s.sealed); i++ {
		s.sealed[i] = nil // release the dropped chunks to the GC
	}
	s.sealed = keep
	return ev
}

// chunks visits the series' chunks oldest-sealed first, head last.
func (s *Series) chunks(fn func(c *chunk)) {
	for _, c := range s.sealed {
		fn(c)
	}
	if s.head != nil {
		fn(s.head)
	}
}

// bytes is the series' current encoded footprint.
func (s *Series) bytes() int {
	n := 0
	s.chunks(func(c *chunk) { n += c.bytes() })
	return n
}
