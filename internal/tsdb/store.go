package tsdb

import (
	"sort"
	"sync"
	"sync/atomic"

	"zerosum/internal/core"
)

// nSeriesShards fans one job's series map over independent locks, mirroring
// the aggregator's rank sharding: concurrent ingest streams hash apart and
// append without serializing on one mutex.
const nSeriesShards = 8

// Store is the embedded multi-job time-series database. All methods are
// safe for concurrent use.
type Store struct {
	opts Options

	mu   sync.RWMutex
	jobs map[string]*jobDB //zerosum:guardedby mu
}

type jobDB struct {
	shards [nSeriesShards]seriesShard

	maxT           atomic.Int64
	samples        atomic.Uint64
	evictedChunks  atomic.Uint64
	evictedSamples atomic.Uint64

	snapMu sync.RWMutex
	snaps  map[snapKey]*snapDoc //zerosum:guardedby snapMu
}

type seriesShard struct {
	mu     sync.Mutex
	series map[SeriesKey]*Series //zerosum:guardedby mu
}

type snapKey struct {
	node string
	rank int
}

// snapDoc is one rank's end-of-run document: the report snapshot and the
// communication-matrix row. Docs are replaced wholesale and never mutated,
// so readers may use them after the lock drops.
type snapDoc struct {
	snap *core.Snapshot
	row  map[int]uint64
}

// NewStore builds a store; zero-value opts take the defaults.
func NewStore(opts Options) *Store {
	return &Store{opts: opts.withDefaults(), jobs: make(map[string]*jobDB)}
}

// Options returns the store's resolved tuning.
func (st *Store) Options() Options { return st.opts }

func (st *Store) job(name string) *jobDB {
	st.mu.RLock()
	db := st.jobs[name]
	st.mu.RUnlock()
	if db != nil {
		return db
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if db = st.jobs[name]; db == nil {
		db = &jobDB{}
		db.maxT.Store(minInt64)
		st.jobs[name] = db
	}
	return db
}

// lookupJob returns nil for an unknown job.
func (st *Store) lookupJob(name string) *jobDB {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.jobs[name]
}

const minInt64 = -1 << 63

// shardFor hashes the series' origin inline (FNV-1a over node bytes, then
// rank) — the ingest path cannot afford a hash.Hash allocation. Sharding by
// (node, rank) rather than by the full key puts every series of one rank's
// batch behind a single lock, so a BatchAppender pays one acquire per batch
// instead of one per sample; distinct ranks still hash apart and append
// concurrently, mirroring the aggregator's rank sharding.
//
//zerosum:hotpath
func (db *jobDB) shardFor(key SeriesKey) *seriesShard {
	return db.shardForOrigin(key.Node, key.Rank)
}

//zerosum:hotpath
func (db *jobDB) shardForOrigin(node string, rank int) *seriesShard {
	h := uint32(2166136261)
	for i := 0; i < len(node); i++ {
		h = (h ^ uint32(node[i])) * 16777619
	}
	r := uint32(rank)
	for i := 0; i < 4; i++ {
		h = (h ^ (r & 0xff)) * 16777619
		r >>= 8
	}
	return &db.shards[h%nSeriesShards]
}

// Append lands one sample on the job's (key) series, creating job and
// series on first touch. t is on the sample clock (TimeToNanos of the
// sample's TimeSec). Steady-state appends — warm series, no block boundary
// — are allocation-free. Ingest loops that land many samples per shipment
// should use BeginBatch, which amortizes this function's per-sample
// bookkeeping (job lookup, shard lock, retention math, counter updates)
// over the whole batch.
func (st *Store) Append(job string, key SeriesKey, t int64, v float64) {
	ba := st.BeginBatch(job, key.Node, key.Rank)
	ba.Append(ba.Resolve(key), t, v)
	ba.End()
}

// BatchAppender is the amortized ingest path: BeginBatch resolves the job
// and locks the origin's series shard once, Resolve/Append land samples
// without further locking or hashing, and End releases the shard and folds
// the batch's sample count, eviction counters, and high-water timestamp
// into the job's accounting in one pass. The zero value is not usable;
// every BeginBatch must be paired with exactly one End.
type BatchAppender struct {
	st     *Store
	db     *jobDB
	sh     *seriesShard
	block  int64
	ds     int64
	cutoff int64

	samples   uint64
	maxT      int64
	evChunks  uint64
	evSamples uint64
}

// BeginBatch locks the series shard that owns every (node, rank) series of
// job and returns an appender over it. The caller must call End (and must
// not touch the store's query API in between, shard locks do not nest).
func (st *Store) BeginBatch(job, node string, rank int) BatchAppender {
	db := st.job(job)
	cutoff := int64(-1)
	if st.opts.Retention > 0 {
		if max := db.maxT.Load(); max != minInt64 {
			cutoff = max - int64(st.opts.Retention)
		}
	}
	sh := db.shardForOrigin(node, rank)
	sh.mu.Lock()
	return BatchAppender{st: st, db: db, sh: sh,
		block: int64(st.opts.Block), ds: int64(st.opts.Downsample),
		cutoff: cutoff, maxT: minInt64}
}

// Resolve returns the shard-owned series for key, creating it on first
// touch. The handle stays valid for the store's lifetime (series are never
// deleted, only their chunks age out), so an ingester may cache it across
// batches and skip the map hash entirely — but may only pass it to Append
// between a BeginBatch and End that cover the same (node, rank) origin.
// The shard lock is held here: BeginBatch acquired it.
func (a *BatchAppender) Resolve(key SeriesKey) *Series {
	s := a.sh.series[key] //zerosum:nolock BeginBatch acquired the shard lock
	if s == nil {
		s = &Series{Key: key}
		if a.sh.series == nil { //zerosum:nolock BeginBatch acquired the shard lock
			a.sh.series = make(map[SeriesKey]*Series) //zerosum:nolock BeginBatch acquired the shard lock
		}
		a.sh.series[key] = s //zerosum:nolock BeginBatch acquired the shard lock
	}
	return s
}

// Append lands one sample on a series resolved under this appender's
// origin. The shard lock is held here: BeginBatch acquired it.
//
//zerosum:hotpath
func (a *BatchAppender) Append(s *Series, t int64, v float64) {
	ev := s.append(t, v, a.block, a.ds, a.cutoff)
	a.samples++
	if ev.chunks > 0 {
		a.evChunks += uint64(ev.chunks)
		a.evSamples += uint64(ev.samples)
	}
	if t > a.maxT {
		a.maxT = t
	}
}

// End unlocks the shard and commits the batch's accounting.
//
//zerosum:hotpath
func (a *BatchAppender) End() {
	a.sh.mu.Unlock()
	if a.samples > 0 {
		a.db.samples.Add(a.samples)
	}
	if a.evChunks > 0 {
		a.db.evictedChunks.Add(a.evChunks)
		a.db.evictedSamples.Add(a.evSamples)
	}
	t := a.maxT
	if t == minInt64 {
		return
	}
	for {
		cur := a.db.maxT.Load()
		if t <= cur || a.db.maxT.CompareAndSwap(cur, t) {
			return
		}
	}
}

// EnforceRetention sweeps every series of every job against the retention
// horizon. Appending already retains at each block boundary; this exists
// for series that stopped receiving samples (a dead rank's history still
// ages out) and is what a daemon calls on a housekeeping tick.
func (st *Store) EnforceRetention() {
	if st.opts.Retention <= 0 {
		return
	}
	st.mu.RLock()
	dbs := make([]*jobDB, 0, len(st.jobs))
	for _, db := range st.jobs {
		dbs = append(dbs, db)
	}
	st.mu.RUnlock()
	for _, db := range dbs {
		max := db.maxT.Load()
		if max == minInt64 {
			continue
		}
		cutoff := max - int64(st.opts.Retention)
		for i := range db.shards {
			sh := &db.shards[i]
			sh.mu.Lock()
			for _, s := range sh.series {
				ev := s.retain(cutoff)
				if ev.chunks > 0 {
					db.evictedChunks.Add(uint64(ev.chunks))
					db.evictedSamples.Add(uint64(ev.samples))
				}
			}
			sh.mu.Unlock()
		}
	}
}

// SetSnapshot stores (replacing) a rank's end-of-run snapshot and
// communication row. The snapshot is copied; the row is retained as given
// and must not be mutated afterwards.
func (st *Store) SetSnapshot(job, node string, rank int, snap core.Snapshot, row map[int]uint64) {
	db := st.job(job)
	db.snapMu.Lock()
	if db.snaps == nil {
		db.snaps = make(map[snapKey]*snapDoc)
	}
	db.snaps[snapKey{node: node, rank: rank}] = &snapDoc{snap: &snap, row: row}
	db.snapMu.Unlock()
}

// EachSnapshot visits the job's snapshots ordered by (rank, node) — the
// order a single-process aggregation of rank-sorted results would see.
// The snapshot and row are immutable once stored; the callback may retain
// them.
func (st *Store) EachSnapshot(job string, fn func(node string, rank int, snap *core.Snapshot, row map[int]uint64)) {
	db := st.lookupJob(job)
	if db == nil {
		return
	}
	db.snapMu.RLock()
	keys := make([]snapKey, 0, len(db.snaps))
	for k := range db.snaps {
		keys = append(keys, k)
	}
	docs := make([]*snapDoc, 0, len(keys))
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].node < keys[j].node
	})
	for _, k := range keys {
		docs = append(docs, db.snaps[k])
	}
	db.snapMu.RUnlock()
	for i, k := range keys {
		fn(k.node, k.rank, docs[i].snap, docs[i].row)
	}
}

// SnapshotCount returns how many rank snapshots the job holds.
func (st *Store) SnapshotCount(job string) int {
	db := st.lookupJob(job)
	if db == nil {
		return 0
	}
	db.snapMu.RLock()
	defer db.snapMu.RUnlock()
	return len(db.snaps)
}

// Jobs lists the store's jobs, sorted.
func (st *Store) Jobs() []string {
	st.mu.RLock()
	names := make([]string, 0, len(st.jobs))
	for name := range st.jobs {
		names = append(names, name)
	}
	st.mu.RUnlock()
	sort.Strings(names)
	return names
}

// JobStats snapshots one job's accounting (zero value for unknown jobs).
func (st *Store) JobStats(job string) JobStats {
	var js JobStats
	db := st.lookupJob(job)
	if db == nil {
		return js
	}
	js.Samples = db.samples.Load()
	js.EvictedChunks = db.evictedChunks.Load()
	js.EvictedSamples = db.evictedSamples.Load()
	if max := db.maxT.Load(); max != minInt64 {
		js.MaxTimeNanos = max
	}
	js.Snapshots = st.SnapshotCount(job)
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		js.Series += len(sh.series)
		for _, s := range sh.series {
			js.SealedChunks += len(s.sealed)
			js.Bytes += uint64(s.bytes())
		}
		sh.mu.Unlock()
	}
	return js
}

// eachShard runs fn under each shard lock of the job in shard order; fn
// must not call back into the store.
func (db *jobDB) eachShard(fn func(sh *seriesShard)) {
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		fn(sh)
		sh.mu.Unlock()
	}
}
