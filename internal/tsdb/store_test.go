package tsdb

import (
	"testing"
	"time"

	"zerosum/internal/core"
)

func testKey(rank, tid int, metric string) SeriesKey {
	return SeriesKey{Node: "node0", Rank: rank, TID: tid, Metric: metric}
}

func TestStoreAppendAndStats(t *testing.T) {
	st := NewStore(Options{Block: time.Minute, Downsample: 5 * time.Second})
	key := testKey(0, 1000, "lwp.nvctx")
	for i := 0; i < 100; i++ {
		st.Append("job1", key, int64(i)*1e9, float64(i))
	}
	js := st.JobStats("job1")
	if js.Samples != 100 || js.Series != 1 {
		t.Fatalf("stats = %+v, want 100 samples in 1 series", js)
	}
	if js.MaxTimeNanos != 99e9 {
		t.Fatalf("MaxTimeNanos = %d, want %d", js.MaxTimeNanos, int64(99e9))
	}
	// 100 seconds at a 1-minute block: the head sealed once.
	if js.SealedChunks != 1 {
		t.Fatalf("SealedChunks = %d, want 1", js.SealedChunks)
	}
	if js.Bytes == 0 || js.Bytes > 100*16 {
		t.Fatalf("Bytes = %d, want compressed but non-zero", js.Bytes)
	}
	if got := st.Jobs(); len(got) != 1 || got[0] != "job1" {
		t.Fatalf("Jobs() = %v", got)
	}
	if js := st.JobStats("nope"); js.Samples != 0 {
		t.Fatalf("unknown job stats = %+v", js)
	}
}

func TestStoreRetention(t *testing.T) {
	st := NewStore(Options{
		Block:      time.Minute,
		Downsample: 5 * time.Second,
		Retention:  2 * time.Minute,
	})
	key := testKey(0, 0, "mem.rss_kb")
	// Ten minutes of one-second samples: blocks 0..9, retention keeps the
	// newest two minutes.
	for i := 0; i < 600; i++ {
		st.Append("job1", key, int64(i)*1e9, float64(i))
	}
	js := st.JobStats("job1")
	if js.EvictedChunks == 0 || js.EvictedSamples == 0 {
		t.Fatalf("nothing evicted: %+v", js)
	}
	if js.Samples != 600 {
		t.Fatalf("Samples = %d (ingest counter must not shrink on eviction)", js.Samples)
	}
	// Everything older than maxT - retention is gone from queries.
	cutoff := int64(599e9) - int64(2*time.Minute)
	res, err := st.Query("job1", QueryOpts{
		Metric: "mem.rss_kb", Rank: -1, TID: -1,
		Start: minInt64 / 2, End: 600e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d series", len(res))
	}
	first := res[0].Points[0].T
	if first > cutoff+int64(time.Minute) {
		t.Fatalf("oldest surviving sample at %d, far beyond cutoff %d", first, cutoff)
	}
	if first >= cutoff && js.EvictedSamples+uint64(len(res[0].Points)) != 600 {
		t.Fatalf("evicted %d + surviving %d != 600", js.EvictedSamples, len(res[0].Points))
	}

	// A series that stops appending still ages out via EnforceRetention
	// when another series advances the job clock.
	st2 := NewStore(Options{Block: time.Minute, Retention: time.Minute})
	dead := testKey(1, 0, "gpu.utilization_pct")
	live := testKey(2, 0, "gpu.utilization_pct")
	for i := 0; i < 120; i++ {
		st2.Append("job2", dead, int64(i)*1e9, 1)
	}
	for i := 0; i < 600; i++ {
		st2.Append("job2", live, int64(i)*1e9, 2)
	}
	st2.EnforceRetention()
	res, err = st2.Query("job2", QueryOpts{
		Metric: "gpu.utilization_pct", Rank: 1, TID: -1, Start: 0, End: 600e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The dead series' sealed chunk (block 0) predates the horizon; only
	// its head (block 1, unsealed) can linger.
	if len(res) == 1 {
		for _, p := range res[0].Points {
			if p.T < 60e9 {
				t.Fatalf("sample at %d survived a 1-minute retention with maxT=599s", p.T)
			}
		}
	}
}

func TestStoreRetentionDisabled(t *testing.T) {
	st := NewStore(Options{Block: time.Second})
	key := testKey(0, 0, "hwt.idle_pct")
	for i := 0; i < 1000; i++ {
		st.Append("job1", key, int64(i)*1e9, float64(i))
	}
	st.EnforceRetention()
	res, err := st.Query("job1", QueryOpts{Metric: "hwt.idle_pct", Rank: -1, TID: -1, Start: 0, End: 1000e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Points) != 1000 {
		t.Fatalf("retention disabled but samples missing: %d series", len(res))
	}
}

func TestStoreSnapshots(t *testing.T) {
	st := NewStore(Options{})
	if st.SnapshotCount("job1") != 0 {
		t.Fatal("phantom snapshots")
	}
	mk := func(rank int) core.Snapshot {
		var s core.Snapshot
		s.Rank = rank
		return s
	}
	st.SetSnapshot("job1", "nodeB", 1, mk(1), map[int]uint64{0: 10})
	st.SetSnapshot("job1", "nodeA", 0, mk(0), nil)
	st.SetSnapshot("job1", "nodeB", 1, mk(1), map[int]uint64{0: 99}) // replace
	if got := st.SnapshotCount("job1"); got != 2 {
		t.Fatalf("SnapshotCount = %d, want 2", got)
	}
	var order []int
	st.EachSnapshot("job1", func(node string, rank int, snap *core.Snapshot, row map[int]uint64) {
		order = append(order, rank)
		if rank == 1 && row[0] != 99 {
			t.Fatalf("stale row after replace: %v", row)
		}
		if snap.Rank != rank {
			t.Fatalf("snapshot/rank mismatch: %d vs %d", snap.Rank, rank)
		}
	})
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("visit order %v, want [0 1]", order)
	}
	st.EachSnapshot("ghost", func(string, int, *core.Snapshot, map[int]uint64) {
		t.Fatal("callback for unknown job")
	})
}

func TestStoreConcurrentAppend(t *testing.T) {
	st := NewStore(Options{Block: time.Second, Downsample: 250 * time.Millisecond})
	const ranks, perRank = 8, 500
	done := make(chan struct{})
	for r := 0; r < ranks; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			key := testKey(r, 1000+r, "lwp.user_pct")
			for i := 0; i < perRank; i++ {
				st.Append("job1", key, int64(i)*1e8, float64(i%100))
			}
		}(r)
	}
	for r := 0; r < ranks; r++ {
		<-done
	}
	js := st.JobStats("job1")
	if js.Samples != ranks*perRank {
		t.Fatalf("Samples = %d, want %d", js.Samples, ranks*perRank)
	}
	res, err := st.Query("job1", QueryOpts{
		Metric: "lwp.user_pct", Rank: -1, TID: -1, Start: 0, End: perRank * 1e8,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sr := range res {
		total += len(sr.Points)
	}
	if len(res) != ranks || total != ranks*perRank {
		t.Fatalf("query saw %d series / %d points, want %d / %d", len(res), total, ranks, ranks*perRank)
	}
}

func TestBlockMarshalRoundTrip(t *testing.T) {
	st := NewStore(Options{Block: 10 * time.Second, Downsample: time.Second})
	type stream struct {
		key SeriesKey
		pts []Point
	}
	var streams []stream
	for r := 0; r < 3; r++ {
		for _, metric := range []string{"lwp.nvctx", "mem.free_kb"} {
			s := stream{key: testKey(r, 1000+r, metric)}
			for i := 0; i < 37; i++ {
				p := Point{T: int64(i) * 1e9, V: float64(r*1000 + i)}
				s.pts = append(s.pts, p)
				st.Append("jobX", s.key, p.T, p.V)
			}
			streams = append(streams, s)
		}
	}
	blob, err := st.MarshalJob("jobX")
	if err != nil {
		t.Fatal(err)
	}
	bs, err := UnmarshalBlocks(blob)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Job != "jobX" {
		t.Fatalf("job = %q", bs.Job)
	}
	if len(bs.Series) != len(streams) {
		t.Fatalf("decoded %d series, want %d", len(bs.Series), len(streams))
	}
	decoded := make(map[SeriesKey][]Point)
	for _, s := range bs.Series {
		var pts []Point
		for _, c := range s.Chunks {
			got, err := c.Samples()
			if err != nil {
				t.Fatalf("chunk decode for %+v: %v", s.Key, err)
			}
			if len(got) != c.Count {
				t.Fatalf("chunk count %d but %d samples", c.Count, len(got))
			}
			pts = append(pts, got...)
		}
		decoded[s.Key] = pts
	}
	for _, s := range streams {
		got := decoded[s.key]
		if len(got) != len(s.pts) {
			t.Fatalf("series %+v: %d samples, want %d", s.key, len(got), len(s.pts))
		}
		for i := range got {
			if got[i].T != s.pts[i].T || !sameBits(got[i].V, s.pts[i].V) {
				t.Fatalf("series %+v sample %d: got %+v want %+v", s.key, i, got[i], s.pts[i])
			}
		}
	}
	// Sealed chunks must carry their rollups across the wire.
	foundRollup := false
	for _, s := range bs.Series {
		for _, c := range s.Chunks {
			if len(c.Rollups) > 0 {
				foundRollup = true
			}
		}
	}
	if !foundRollup {
		t.Fatal("no rollups survived marshalling")
	}
	// Determinism: same store contents, same bytes.
	blob2, err := st.MarshalJob("jobX")
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("MarshalJob is not deterministic")
	}
	if _, err := st.MarshalJob("ghost"); err == nil {
		t.Fatal("marshalling an unknown job succeeded")
	}
}

func TestUnmarshalBlocksRejectsDamage(t *testing.T) {
	st := NewStore(Options{Block: time.Second})
	st.Append("j", testKey(0, 0, "m"), 1e9, 3.5)
	st.Append("j", testKey(0, 0, "m"), 2e9, 4.5)
	blob, err := st.MarshalJob("j")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBlocks(blob); err != nil {
		t.Fatalf("clean blob rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad-version", func(b []byte) []byte { b[4] = 99; return b }},
		{"flipped-body", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-9] }},
		{"trailing", func(b []byte) []byte { return append(b, 0) }},
	} {
		mutated := tc.mut(append([]byte(nil), blob...))
		if _, err := UnmarshalBlocks(mutated); err == nil {
			t.Errorf("%s: damaged blob accepted", tc.name)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Block != DefaultBlock || o.Downsample != DefaultDownsample || o.Retention != 0 {
		t.Fatalf("defaults = %+v", o)
	}
	// Downsample coarser than the block clamps down, so rollup buckets
	// always nest inside a chunk's block.
	o = Options{Block: time.Second, Downsample: time.Hour}.withDefaults()
	if o.Downsample != time.Second {
		t.Fatalf("Downsample = %v, want clamped to block", o.Downsample)
	}
}

func TestFloorDiv(t *testing.T) {
	for _, tc := range []struct{ a, b, want int64 }{
		{7, 5, 1}, {-7, 5, -2}, {-5, 5, -1}, {0, 5, 0}, {5, 5, 1},
	} {
		if got := floorDiv(tc.a, tc.b); got != tc.want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
