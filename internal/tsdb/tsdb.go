// Package tsdb is ZeroSum's embedded time-series store: the per-job sample
// history the aggregation tier keeps so "what happened to rank 3 between
// minute 10 and 20" stays answerable after the job ends. The paper's export
// path (§3.6) anticipates forwarding samples to a data service; monitoring
// stacks built around the same collector model (MPCDF, LIKWID) pair it with
// a job time-series store, and this package is that store — stdlib-only and
// in-process, so zsaggd needs no external database.
//
// Layout. Samples live in per-(node, rank, tid, metric) series under a
// per-job database. Each series appends into a head chunk using the
// Facebook Gorilla encoding — delta-of-delta timestamps and XOR-compressed
// float64 values packed into a bitstream — and seals the head into an
// immutable chunk when the sample time crosses a block boundary (Options.
// Block) or the chunk fills. Sealing computes downsampled rollups (count /
// min / max / sum / first / last per Options.Downsample bucket), so coarse
// range queries over sealed data fold rollups without touching the
// compressed bitstream, and queries only ever decompress chunks whose time
// range overlaps the window — untouched series and blocks stay compressed.
// Retention (Options.Retention) evicts sealed chunks whose newest sample
// has aged out of the per-job sample clock.
//
// Time. The store's clock is the job's sample clock — nanoseconds of
// TimeSec, the seconds-since-start stamp every exported sample carries —
// not the wall clock. TimeToNanos converts at the ingest boundary; inside
// the store timestamps are plain int64 nanos, which is what makes the
// Gorilla codec lossless end to end.
//
// The store also keeps each rank's end-of-run snapshot and communication
// row (SetSnapshot), so the aggregator's summary and heatmap endpoints are
// views over the store rather than over separate live state.
package tsdb

import (
	"math"
	"time"
)

// Default tuning. Block and downsample spans are in sample time (job
// seconds), not wall time.
const (
	// DefaultBlock is the time span one sealed chunk covers.
	DefaultBlock = time.Minute
	// DefaultDownsample is the rollup bucket width computed at seal.
	DefaultDownsample = 5 * time.Second
	// maxChunkSamples seals a chunk early so one series flooding samples
	// inside a single block cannot grow a chunk without bound.
	maxChunkSamples = 16384
)

// Options tunes a Store. The zero value is usable: defaults fill in, and
// zero Retention keeps everything.
type Options struct {
	// Block is the sample-time span of one chunk; crossing a block boundary
	// seals the head chunk into an immutable one (default DefaultBlock).
	Block time.Duration
	// Downsample is the rollup bucket width computed when a chunk seals
	// (default DefaultDownsample, clamped to at most Block).
	Downsample time.Duration
	// Retention bounds how far back of the series' newest sample sealed
	// chunks are kept; 0 keeps everything. Eviction happens when a series
	// seals a chunk and on EnforceRetention. Snapshots are never evicted:
	// the end-of-run summary must survive the samples.
	Retention time.Duration
}

func (o Options) withDefaults() Options {
	if o.Block <= 0 {
		o.Block = DefaultBlock
	}
	if o.Downsample <= 0 {
		o.Downsample = DefaultDownsample
	}
	if o.Downsample > o.Block {
		o.Downsample = o.Block
	}
	if o.Retention < 0 {
		o.Retention = 0
	}
	return o
}

// SeriesKey identifies one series within a job. TID is the finest label the
// metric has: the thread id for LWP metrics, the hardware thread for HWT
// metrics, the device index for GPU metrics, and 0 for node- or
// process-wide metrics.
type SeriesKey struct {
	Node   string
	Rank   int
	TID    int
	Metric string
}

// Point is one (time, value) pair of a query result.
type Point struct {
	T int64 // sample-clock nanoseconds
	V float64
}

// Sec returns the point's time on the job's sample clock in seconds.
func (p Point) Sec() float64 { return float64(p.T) / 1e9 }

// TimeToNanos converts a sample's TimeSec stamp to the store's integer
// sample clock. The conversion happens exactly once, at the ingest
// boundary; everything after it is lossless int64 arithmetic.
func TimeToNanos(sec float64) int64 { return int64(math.Round(sec * 1e9)) }

// NanosToSec is the inverse rendering for query responses.
func NanosToSec(t int64) float64 { return float64(t) / 1e9 }

// JobStats is a point-in-time accounting of one job's store.
type JobStats struct {
	Series         int    // live series
	SealedChunks   int    // immutable chunks currently held
	Samples        uint64 // samples ever appended (not reduced by eviction)
	Bytes          uint64 // encoded bytes currently held (head + sealed)
	EvictedChunks  uint64 // sealed chunks dropped by retention
	EvictedSamples uint64 // samples inside those chunks
	Snapshots      int    // rank snapshots stored
	MaxTimeNanos   int64  // newest sample time seen (0 if no samples)
}

// zigzag maps signed deltas onto unsigned so magnitude, not sign, decides
// the encoding bucket.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// floorDiv is integer division rounding toward negative infinity, so time
// bucketing stays consistent should a sample clock ever go negative.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
