package workload

// Deterministic adaptive-sampling scenarios driven by the sched simulator:
// a quiescent worker's effective sampling period must stretch, observed
// activity must snap it back to the base rate within one base tick, and
// stall detection (§3.3) must keep its timing — a stalled or stalling LWP
// is never observed less often than StallTicks allows.

import (
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
)

// runAdaptiveScenario runs one rank at a 100 ms base period with adaptive
// sampling on, returning the result and the worker's streamed LWP samples
// in arrival order.
func runAdaptiveScenario(t *testing.T, app *stallApp, stallTicks int, adaptive core.AdaptiveConfig) (*Result, []export.LWPSample) {
	t.Helper()
	var stream export.Stream
	var samples []export.LWPSample
	workerTID := func() int { return app.workerTID }
	stream.Subscribe(func(ev export.Event) {
		if ev.Kind == export.EventLWP && ev.LWP.TID == workerTID() {
			samples = append(samples, *ev.LWP)
		}
	})
	res, err := Run(Config{
		Machine: topology.Laptop4Core,
		App:     app,
		Srun:    slurm.Options{NTasks: 1, CoresPerTask: 4},
		Monitor: MonitorConfig{
			Enabled: true, Period: 100 * sim.Millisecond, CPU: -1,
			StallTicks: stallTicks,
			Adaptive:   adaptive,
			Stream:     &stream,
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, samples
}

// sleepAfter computes until busyUntil, then blocks in one long sleep to the
// end of the run: the canonical quiescent thread.
func sleepAfter(busyUntil, end sim.Time) func(*stallApp) sched.BehaviorFunc {
	return func(*stallApp) sched.BehaviorFunc {
		slept := false
		return func(t *sched.Task, now sim.Time) sched.Action {
			if now < busyUntil {
				return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
			}
			if !slept {
				slept = true
				return sched.Sleep{D: end - now}
			}
			return nil
		}
	}
}

// gaps returns the deltas between consecutive sample times inside [lo, hi].
func gaps(samples []export.LWPSample, lo, hi float64) []float64 {
	var out []float64
	prev := -1.0
	for _, s := range samples {
		if s.TimeSec < lo || s.TimeSec > hi {
			continue
		}
		if prev >= 0 {
			out = append(out, s.TimeSec-prev)
		}
		prev = s.TimeSec
	}
	return out
}

// TestAdaptiveQuiescentThreadStretches: once the worker goes to sleep for
// good, its sampling period must stretch toward MaxStretch — far fewer
// samples than the base rate, with inter-sample gaps reaching several base
// periods — while the skip counter accounts for every elided scan.
func TestAdaptiveQuiescentThreadStretches(t *testing.T) {
	app := &stallApp{
		mainUntil: 6 * sim.Second,
		worker:    sleepAfter(sim.Second, 6*sim.Second),
	}
	res, samples := runAdaptiveScenario(t, app, 0, core.AdaptiveConfig{Enabled: true})

	// Quiet window well past the last beat: a fixed 100 ms cadence would
	// deliver ~35 samples; stretching (2, 4, 8, 8...) must cut that to a
	// handful.
	quiet := 0
	for _, s := range samples {
		if s.TimeSec >= 2 && s.TimeSec <= 5.5 {
			quiet++
		}
	}
	if quiet == 0 {
		t.Fatal("no samples at all in the quiet window")
	}
	if quiet > 12 {
		t.Fatalf("quiescent worker sampled %d times in 3.5 s at a 100 ms base period; period did not stretch", quiet)
	}
	maxGap := 0.0
	for _, g := range gaps(samples, 2, 5.5) {
		if g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 0.7 {
		t.Fatalf("max quiet-window gap %.2f s, want >= 0.7 (stretch toward 8x a 100 ms period)", maxGap)
	}
	mon := res.Ranks[0].Monitor
	if mon.AdaptiveSkips() == 0 {
		t.Fatal("monitor reports zero adaptive skips despite a quiescent worker")
	}
	if got := mon.SelfStats().AdaptiveSkips; got != mon.AdaptiveSkips() {
		t.Fatalf("SelfStats.AdaptiveSkips = %d, AdaptiveSkips() = %d", got, mon.AdaptiveSkips())
	}
}

// TestAdaptiveSnapBackOnActivity: a worker that wakes after a long
// quiescent phase must be back at the base sampling rate within one base
// tick of the sample that observed the activity.
func TestAdaptiveSnapBackOnActivity(t *testing.T) {
	app := &stallApp{
		mainUntil: 6 * sim.Second,
		worker: func(*stallApp) sched.BehaviorFunc {
			slept := false
			return func(task *sched.Task, now sim.Time) sched.Action {
				if now < sim.Second {
					return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
				}
				if !slept {
					slept = true
					return sched.Sleep{D: 3500*sim.Millisecond - now}
				}
				if now >= 6*sim.Second {
					return nil
				}
				return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
			}
		},
	}
	_, samples := runAdaptiveScenario(t, app, 0, core.AdaptiveConfig{Enabled: true})

	// The quiescent phase stretched: at least one gap well past the base
	// period before the wake-up.
	stretched := 0.0
	for _, g := range gaps(samples, 1.5, 3.5) {
		if g > stretched {
			stretched = g
		}
	}
	if stretched < 0.3 {
		t.Fatalf("pre-wake max gap %.2f s; period never stretched, snap-back is vacuous", stretched)
	}

	// First sample at/after the wake observes the activity (the wake's
	// context switch and the resumed jiffies); the next sample must arrive
	// one base tick later.
	post := samples[:0:0]
	for _, s := range samples {
		if s.TimeSec >= 3.5 {
			post = append(post, s)
		}
	}
	if len(post) < 3 {
		t.Fatalf("want several post-wake samples, got %d", len(post))
	}
	if snap := post[1].TimeSec - post[0].TimeSec; snap > 0.25 {
		t.Fatalf("gap after the spike-observing sample is %.2f s, want <= 0.25 (one base tick plus slack)", snap)
	}
	// And it stays at the base rate while the worker keeps computing.
	for _, g := range gaps(post, 3.5, 5.8) {
		if g > 0.25 {
			t.Fatalf("computing worker sampled with a %.2f s gap after snap-back", g)
		}
	}
}

// TestAdaptiveStalledSamplingBoundedByStallTicks: with stall detection on,
// the stretch is capped at StallTicks — the detector flags the quiescent
// worker on schedule (the streak advances in base-tick units across
// skipped ticks) and the flagged thread keeps being observed at least once
// per stall window so recovery is never missed.
func TestAdaptiveStalledSamplingBoundedByStallTicks(t *testing.T) {
	const stallTicks = 3
	app := &stallApp{
		mainUntil: 6 * sim.Second,
		worker:    sleepAfter(sim.Second, 6*sim.Second),
	}
	res, samples := runAdaptiveScenario(t, app, stallTicks,
		core.AdaptiveConfig{Enabled: true, MaxStretch: 8})

	first := -1.0
	for _, s := range samples {
		if s.Stalled {
			first = s.TimeSec
			break
		}
	}
	if first < 0 {
		t.Fatal("stalled worker never flagged with adaptive sampling on")
	}
	// Last beat ~1.1 s (the sleep's voluntary switch). Skipped ticks count
	// toward the streak, so the flag appears within the same few base
	// periods a fixed-rate monitor needs.
	if latest := 1.1 + float64(stallTicks+5)*0.1; first > latest {
		t.Fatalf("stall flagged at t=%.2f, want <= %.2f", first, latest)
	}
	// No observation gap may exceed the StallTicks cap (3 base periods,
	// plus scheduling slack) from the last beat onward.
	for _, g := range gaps(samples, 1.2, 5.8) {
		if g > float64(stallTicks)*0.1+0.15 {
			t.Fatalf("stalling worker observed with a %.2f s gap, cap is %d x 100 ms", g, stallTicks)
		}
	}
	w := workerSummary(t, res, app.workerTID)
	if w.StallEvents != 1 {
		t.Fatalf("stall events = %d, want 1", w.StallEvents)
	}
}
