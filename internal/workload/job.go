// Package workload wires the substrates into runnable simulated HPC jobs:
// an srun-style launch (slurm) places MPI ranks (mpi) with OpenMP teams
// (openmp) and GPU assignments (gpu) onto simulated nodes (sched/topology),
// optionally injecting the ZeroSum monitor (core) as the asynchronous
// per-process thread the paper's tool uses. It also provides the proxy
// applications behind the paper's evaluation: a miniQMC-like MPI+OpenMP
// (+offload) code and a PIC-like halo-exchange code.
package workload

import (
	"fmt"
	"io"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/fsio"
	"zerosum/internal/gpu"
	"zerosum/internal/mpi"
	"zerosum/internal/obs"
	"zerosum/internal/openmp"
	"zerosum/internal/perfstub"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
)

// MonitorConfig controls the injected ZeroSum thread.
type MonitorConfig struct {
	// Enabled injects the monitor; when false the job runs bare (the
	// baseline side of the overhead experiment).
	Enabled bool
	// Period is the sampling interval (default 1 s, like the paper).
	Period sim.Time
	// CostBase and CostPerThread model the CPU the sampling pass burns:
	// total = CostBase + CostPerThread * live LWPs. Defaults 150 us + 40 us.
	CostBase      sim.Time
	CostPerThread sim.Time
	// Bursts splits the sampling work into short runs separated by
	// micro-sleeps (each /proc read blocks briefly in the kernel), which
	// is what inflicts several involuntary switches per tick on a thread
	// sharing the monitor's core. Default 8.
	Bursts int
	// CPU pins the monitor thread; <0 picks the last CPU of the process
	// cpuset (ZeroSum's default, runtime-configurable in the paper).
	CPU int
	// Heartbeat, when non-nil, receives periodic progress lines.
	Heartbeat io.Writer
	// HeartbeatEvery in samples (0 disables).
	HeartbeatEvery int
	// Stream receives every sample (data-service hook).
	Stream *export.Stream
	// StreamFor, when non-nil, supplies a per-rank stream and overrides
	// Stream (per-rank staged logs and aggd node agents need distinct,
	// origin-labelled sinks). node is the simulated hostname the rank was
	// placed on.
	StreamFor func(rank int, node string) *export.Stream
	// KeepSeries retains the full time series (default true).
	DropSeries bool
	// DeadlockSamples enables the deadlock hint after N all-idle samples.
	DeadlockSamples int
	// RebindAfter enables the monitor's automatic thread re-affinity after
	// N consecutive pileup samples (0 disables).
	RebindAfter int
	// StallTicks enables §3.3 progress detection: a thread with no
	// utime/stime/ctx-switch delta for this many consecutive samples is
	// flagged stalled (0 disables).
	StallTicks int
	// Budget enables the §4.1 overhead-budget watchdog on each rank's
	// monitor; when exceeded, sampling degrades (the period doubles).
	Budget obs.Budget
	// Adaptive enables per-LWP adaptive sampling on each rank's monitor:
	// quiescent threads are scanned less often.
	Adaptive core.AdaptiveConfig
	// Obs, when non-nil, receives internal tracing spans from every rank's
	// monitor (the recorder is safe for concurrent writers).
	Obs *obs.Recorder
}

func (mc MonitorConfig) withDefaults() MonitorConfig {
	if mc.Period <= 0 {
		mc.Period = sim.Second
	}
	if mc.CostBase <= 0 {
		mc.CostBase = 400 * sim.Microsecond
	}
	if mc.CostPerThread <= 0 {
		mc.CostPerThread = 60 * sim.Microsecond
	}
	if mc.Bursts <= 0 {
		mc.Bursts = 8
	}
	return mc
}

// App builds the application tasks for one rank. Build is called once per
// rank after the process, MPI attachment, OpenMP runtime and GPU view
// exist; it must create the main task (first NewTask on the process).
type App interface {
	Build(rc *RankCtx) error
}

// RankCtx is everything a rank's app factory can reach.
type RankCtx struct {
	Rank    int
	Job     *Job
	Node    int
	K       *sched.Kernel
	Proc    *sched.Process
	MPI     *mpi.Rank
	OMP     *openmp.Runtime
	Devices []*gpu.Device // this rank's visible devices, visible order
	SMI     gpu.SMI       // nil when no GPUs assigned
	RNG     *sim.RNG      // per-rank deterministic stream
	Monitor *core.Monitor // nil when monitoring is disabled
	// Stubs is the rank's PerfStubs-style instrumentation registry on the
	// simulated clock; proxy apps time their phases through it and the
	// final RankResult exposes it for correlation with system samples.
	Stubs *perfstub.Registry
	// FS is the job's shared filesystem (nil unless Config.FS was set).
	FS *fsio.FileSystem
}

// AppDone reports whether every application LWP of the rank has exited
// (the monitor and MPI helper threads don't count).
func (rc *RankCtx) AppDone() bool {
	for _, t := range rc.Proc.Tasks {
		if t.Exited {
			continue
		}
		if t.Kind == sched.KindZeroSum || t.Kind == sched.KindOther {
			continue
		}
		return false
	}
	return true
}

// Config describes a simulated job.
type Config struct {
	// Machine builds one node (call a topology preset).
	Machine func() *topology.Machine
	// Nodes is the node count (default 1).
	Nodes int
	// Srun is the launch configuration.
	Srun slurm.Options
	// OMP is the per-process OpenMP environment.
	OMP openmp.Env
	// App builds each rank's tasks.
	App App
	// Monitor configures the injected ZeroSum thread.
	Monitor MonitorConfig
	// Sched overrides kernel scheduler parameters.
	Sched sched.Params
	// Net overrides interconnect parameters.
	Net *mpi.NetParams
	// Seed drives all randomness (default 1).
	Seed uint64
	// MaxSimTime aborts runaway jobs (default 1 hour of simulated time).
	MaxSimTime sim.Time
	// MaxEvents bounds the event loop (default 500M).
	MaxEvents int
	// TraceEvents, when positive, records per-node scheduling traces
	// (Chrome trace format) capped at this many slices per node.
	TraceEvents int
	// FS, when non-nil, attaches a shared parallel filesystem that
	// checkpointing workloads write through.
	FS *fsio.Params
}

// RankResult is one rank's outcome.
type RankResult struct {
	Rank       int
	Node       int
	PID        int
	Proc       *sched.Process
	Monitor    *core.Monitor // nil when disabled
	Snapshot   core.Snapshot // zero when disabled
	Stubs      *perfstub.Registry
	AppRuntime float64 // seconds from launch to last app-thread exit
}

// Result is the whole job's outcome.
type Result struct {
	Ranks   []RankResult
	World   *mpi.World
	Kernels []*sched.Kernel
	// WallSeconds is the job runtime: the max rank AppRuntime (what the
	// application self-reports, the number Figure 8 compares).
	WallSeconds float64
	// Traces holds one scheduling trace per node when Config.TraceEvents
	// was set.
	Traces []*sched.Trace
	// FS is the job's shared filesystem (nil unless Config.FS was set).
	FS *fsio.FileSystem
}

// Job is the in-flight state; exposed to App factories through RankCtx.
type Job struct {
	Cfg     Config
	Q       *sim.Queue
	World   *mpi.World
	Kernels []*sched.Kernel
	Ranks   []*RankCtx
	RNG     *sim.RNG
	// FS is the job's shared filesystem when Config.FS was given.
	FS *fsio.FileSystem

	traces []*sched.Trace
}

// Run executes a simulated job to completion.
func Run(cfg Config) (*Result, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("workload: Config.Machine is required")
	}
	if cfg.App == nil {
		return nil, fmt.Errorf("workload: Config.App is required")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxSimTime <= 0 {
		cfg.MaxSimTime = 3600 * sim.Second
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 500_000_000
	}
	cfg.Monitor = cfg.Monitor.withDefaults()

	protoMachine := cfg.Machine()
	plan, err := slurm.Plan(protoMachine, cfg.Nodes, cfg.Srun)
	if err != nil {
		return nil, err
	}

	var q sim.Queue
	rng := sim.NewRNG(cfg.Seed)
	job := &Job{Cfg: cfg, Q: &q, RNG: rng}

	net := mpi.DefaultNet()
	if cfg.Net != nil {
		net = *cfg.Net
	}
	job.World = mpi.NewWorld(&q, cfg.Srun.NTasks, net)
	if cfg.FS != nil {
		job.FS = fsio.New(*cfg.FS, func() sim.Time { return q.Now() })
	}

	// Build one kernel (+ its GPU devices) per node actually used.
	nodesUsed := 0
	for _, a := range plan {
		if a.Node+1 > nodesUsed {
			nodesUsed = a.Node + 1
		}
	}
	nodeDevices := make([]map[int]*gpu.Device, nodesUsed)
	for n := 0; n < nodesUsed; n++ {
		m := cfg.Machine()
		if nodesUsed > 1 {
			m.Hostname = fmt.Sprintf("%s-%04d", m.Hostname, n)
		}
		k := sched.NewKernel(m, &q, rng.Fork(), cfg.Sched)
		job.Kernels = append(job.Kernels, k)
		if cfg.TraceEvents > 0 {
			job.traces = append(job.traces, k.EnableTrace(cfg.TraceEvents))
		}
		devs := map[int]*gpu.Device{}
		for _, g := range m.GPUs {
			devs[g.VendorIndex] = gpu.NewDevice(
				gpu.DeviceInfo{
					VisibleIndex: g.VendorIndex,
					TrueIndex:    g.VendorIndex,
					NUMAIndex:    g.NUMAIndex,
					Model:        g.Model,
					MemBytes:     g.MemBytes,
					GTTBytes:     g.GTTBytes,
				},
				gpuParamsFrom(g),
				func() sim.Time { return q.Now() },
				rng.Fork(),
			)
		}
		nodeDevices[n] = devs
	}

	// Create processes and attach ranks first (sends at t=0 must resolve).
	for _, a := range plan {
		k := job.Kernels[a.Node]
		p := k.NewProcess(appComm(cfg.App), a.CPUs)
		rc := &RankCtx{
			Rank: a.Rank,
			Job:  job,
			Node: a.Node,
			K:    k,
			Proc: p,
			MPI:  job.World.Attach(a.Rank, k, p),
			RNG:  rng.Fork(),
		}
		rc.Stubs = perfstub.NewRegistry(func() float64 { return q.Now().Seconds() })
		rc.FS = job.FS
		rc.OMP = openmp.NewRuntime(k, cfg.OMP)
		for vis, vendorIdx := range a.GPUs {
			dev := nodeDevices[a.Node][vendorIdx]
			// The rank sees the device as index `vis` but its true index
			// is the vendor index — the paper's visible-vs-true split.
			info := dev.Info
			info.VisibleIndex = vis
			info.TrueIndex = vendorIdx
			dev.Info = info
			rc.Devices = append(rc.Devices, dev)
		}
		if len(rc.Devices) > 0 {
			rc.SMI = gpu.NewSimSMI(rc.Devices, rng.Fork())
		}
		job.Ranks = append(job.Ranks, rc)
	}

	// Wire monitors, then build apps, then helper threads.
	for _, rc := range job.Ranks {
		if cfg.Monitor.Enabled {
			if err := injectMonitor(rc, cfg.Monitor); err != nil {
				return nil, err
			}
		}
	}
	for _, rc := range job.Ranks {
		if err := cfg.App.Build(rc); err != nil {
			return nil, fmt.Errorf("workload: build rank %d: %w", rc.Rank, err)
		}
		if rc.Proc.Main() == nil {
			return nil, fmt.Errorf("workload: app for rank %d created no main task", rc.Rank)
		}
		spawnProgressThread(rc)
	}
	// Start the monitor threads after the app exists so the last-CPU
	// placement and self-classification see the real process.
	for _, rc := range job.Ranks {
		if rc.Monitor != nil {
			startMonitorThread(rc, cfg.Monitor)
		}
	}

	if err := runAll(job, cfg); err != nil {
		return nil, err
	}

	res := &Result{World: job.World, Kernels: job.Kernels, Traces: job.traces, FS: job.FS}
	for _, tr := range res.Traces {
		tr.Flush()
	}
	for _, rc := range job.Ranks {
		rr := RankResult{
			Rank: rc.Rank, Node: rc.Node, PID: rc.Proc.PID, Proc: rc.Proc,
			Monitor: rc.Monitor, Stubs: rc.Stubs,
		}
		var last sim.Time
		for _, t := range rc.Proc.Tasks {
			if t.Kind == sched.KindZeroSum || t.Kind == sched.KindOther {
				continue
			}
			if t.ExitTime > last {
				last = t.ExitTime
			}
		}
		rr.AppRuntime = (last - rc.Proc.StartTime).Seconds()
		if rc.Monitor != nil {
			rc.Monitor.Finish()
			rr.Snapshot = rc.Monitor.Snapshot()
		}
		res.Ranks = append(res.Ranks, rr)
		if rr.AppRuntime > res.WallSeconds {
			res.WallSeconds = rr.AppRuntime
		}
	}
	return res, nil
}

// runAll drives the shared event queue until every process on every kernel
// has exited.
func runAll(job *Job, cfg Config) error {
	allExited := func() bool {
		for _, k := range job.Kernels {
			if !k.AllExited() {
				return false
			}
		}
		return true
	}
	for i := 0; i < cfg.MaxEvents; i++ {
		if allExited() {
			return nil
		}
		if job.Q.Now() > cfg.MaxSimTime {
			return fmt.Errorf("workload: exceeded max simulated time %v", cfg.MaxSimTime)
		}
		if !job.Q.Step() {
			if allExited() {
				return nil
			}
			return fmt.Errorf("workload: event queue drained with live processes at %v (deadlock?)", job.Q.Now())
		}
	}
	return fmt.Errorf("workload: exceeded %d events", cfg.MaxEvents)
}

// appComm extracts a process name from the app.
func appComm(a App) string {
	if n, ok := a.(interface{ Name() string }); ok {
		return n.Name()
	}
	return "app"
}

func gpuParamsFrom(g *topology.GPU) gpu.Params {
	p := gpu.DefaultParams()
	if g.PeakClockMHz > 0 {
		p.PeakClockMHz = g.PeakClockMHz
	}
	if g.BaseClockMHz > 0 {
		p.BaseClockMHz = g.BaseClockMHz
	}
	if g.TDPWatts > 0 {
		p.TDPWatts = g.TDPWatts
	}
	return p
}

// injectMonitor builds the core.Monitor for a rank (the LD_PRELOAD
// initialization phase: configuration detection happens at New).
func injectMonitor(rc *RankCtx, mc MonitorConfig) error {
	fs := rc.K.ProcFS(rc.Proc.PID)
	stream := mc.Stream
	if mc.StreamFor != nil {
		stream = mc.StreamFor(rc.Rank, rc.K.Hostname())
	}
	mon, err := core.New(core.Config{
		Period:          mc.Period.Duration(),
		HeartbeatEvery:  mc.HeartbeatEvery,
		Heartbeat:       mc.Heartbeat,
		DeadlockSamples: mc.DeadlockSamples,
		RebindAfter:     mc.RebindAfter,
		StallTicks:      mc.StallTicks,
		Budget:          mc.Budget,
		Adaptive:        mc.Adaptive,
		Obs:             mc.Obs,
		Stream:          stream,
		KeepSeries:      !mc.DropSeries,
	}, core.Deps{
		FS:       fs,
		SMI:      rc.SMI,
		Clock:    rc.K.WallClock,
		Machine:  rc.K.Machine,
		Rebinder: &simRebinder{rc: rc},
	})
	if err != nil {
		return err
	}
	rc.Monitor = mon
	// OMPT integration: classify team threads as they are created.
	rc.OMP.OnThreadBegin(func(t *sched.Task, threadNum int) {
		mon.HintKind(t.TID, core.KindOpenMP)
	})
	// PMPI integration: byte accounting for the heatmap.
	rc.MPI.OnP2P(func(kind mpi.P2PKind, peer int, bytes uint64) {
		mon.RecordP2P(kind == mpi.OpSend, peer, bytes)
	})
	return nil
}

// startMonitorThread spawns the asynchronous ZeroSum LWP: sleep one period,
// burn the sampling cost in short bursts, take the sample, repeat; exit
// when the application is done.
func startMonitorThread(rc *RankCtx, mc MonitorConfig) {
	cpu := mc.CPU
	if cpu < 0 || !rc.Proc.Affinity.Contains(cpu) {
		cpu = rc.Proc.Affinity.Last()
	}
	mon := rc.Monitor
	k := rc.K

	// One cycle: Sleep(period); then Bursts short computes separated by
	// micro-sleeps (each /proc read blocks briefly in the kernel, letting
	// a displaced thread back on the CPU so the next burst preempts it
	// again); then the Tick callback; repeat until the app exits.
	step := 0
	behavior := sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
		// Late MPI detection, as the paper's async thread does.
		if rc.MPI.Initialized() {
			mon.SetMPIInfo(rc.MPI.ID, rc.MPI.Size())
		}
		if step == 0 {
			if rc.AppDone() {
				mon.Finish()
				return nil
			}
			step++
			// CurrentPeriod, not mc.Period: the overhead-budget watchdog
			// may have degraded the sampling rate mid-run (§4.1).
			return sched.Sleep{D: sim.Time(mon.CurrentPeriod())}
		}
		idx := step - 1 // position in the burst/sleep alternation
		step++
		if idx < 2*mc.Bursts-1 {
			if idx%2 == 0 {
				cost := mc.CostBase + mc.CostPerThread*sim.Time(len(rc.Proc.LiveTasks()))
				return sched.Compute{Work: cost / sim.Time(mc.Bursts), SysFrac: 0.3}
			}
			return sched.Sleep{D: 30 * sim.Microsecond}
		}
		step = 0
		return sched.Call{Fn: func(sim.Time) {
			if err := mon.Tick(); err != nil {
				panic(fmt.Sprintf("workload: monitor tick: %v", err))
			}
		}}
	})
	task := k.NewTask(rc.Proc, "zerosum", behavior,
		sched.WithKind(sched.KindZeroSum),
		sched.WithAffinity(topology.NewCPUSet(cpu)),
		sched.WithWakePreempt())
	mon.SetSelfTID(task.TID)
	mon.HintKind(task.TID, core.KindZeroSum)
}

// simRebinder applies monitor-initiated affinity changes to simulated
// tasks — the sched_setaffinity path of the auto-rebind feature.
type simRebinder struct {
	rc *RankCtx
}

// SetAffinity implements core.Rebinder.
func (r *simRebinder) SetAffinity(tid int, cpus topology.CPUSet) error {
	for _, t := range r.rc.Proc.Tasks {
		if t.TID == tid && !t.Exited {
			r.rc.K.SetAffinity(t, cpus)
			return nil
		}
	}
	return fmt.Errorf("workload: no live task %d", tid)
}

// spawnProgressThread starts the MPI helper LWP, exiting with the app.
func spawnProgressThread(rc *RankCtx) {
	aff := rc.K.Machine.UsableSet(0)
	sleeping := false
	behavior := sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
		if rc.AppDone() {
			return nil
		}
		sleeping = !sleeping
		if sleeping {
			return sched.Sleep{D: 500 * sim.Millisecond}
		}
		return sched.Compute{Work: 15 * sim.Microsecond, SysFrac: 0.9}
	})
	rc.K.NewTask(rc.Proc, "cxi_progress", behavior,
		sched.WithKind(sched.KindOther),
		sched.WithAffinity(aff))
}
