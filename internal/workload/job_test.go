package workload

import (
	"strings"
	"testing"

	"zerosum/internal/fsio"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/openmp"
	"zerosum/internal/report"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
)

// scaledMiniQMC is the paper workload at 1/10 scale for fast tests.
func scaledMiniQMC() *MiniQMC {
	mq := DefaultMiniQMC()
	mq.Steps = 10
	mq.WorkPerStep = 20 * sim.Millisecond
	return mq
}

func fastMonitor() MonitorConfig {
	return MonitorConfig{Enabled: true, Period: 100 * sim.Millisecond, CPU: -1}
}

// runTable runs the scaled miniQMC in one of the paper's three launch
// configurations.
func runTable(t *testing.T, table int, mon MonitorConfig) *Result {
	t.Helper()
	cfg := Config{
		Machine: topology.Frontier,
		Nodes:   1,
		App:     scaledMiniQMC(),
		Monitor: mon,
		Seed:    42,
	}
	switch table {
	case 1: // srun -n8, OMP_NUM_THREADS=7
		cfg.Srun = slurm.Options{NTasks: 8}
		cfg.OMP = openmp.Env{NumThreads: 7}
		cfg.Sched = sched.Params{Quantum: 100 * sim.Microsecond, Timeslice: 200 * sim.Microsecond}
	case 2: // srun -n8 -c7
		cfg.Srun = slurm.Options{NTasks: 8, CoresPerTask: 7}
		cfg.OMP = openmp.Env{NumThreads: 7}
	case 3: // srun -n8 -c7 + OMP_PROC_BIND=spread OMP_PLACES=cores
		cfg.Srun = slurm.Options{NTasks: 8, CoresPerTask: 7}
		cfg.OMP = openmp.Env{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores}
	default:
		t.Fatalf("unknown table %d", table)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTable1DefaultConfigShape(t *testing.T) {
	res := runTable(t, 1, fastMonitor())
	snap := res.Ranks[0].Snapshot
	// All app threads confined to one core (core 1 for rank 0).
	for _, l := range snap.LWPs {
		if l.Kind == core.KindOther {
			continue // MPI helper is unbound
		}
		if got := l.Affinity.String(); got != "1" {
			t.Fatalf("LWP %d (%s) affinity = %s, want 1", l.TID, l.Label, got)
		}
	}
	// Massive involuntary context switching on the compute threads.
	var maxNV uint64
	for _, l := range snap.LWPs {
		if l.Kind == core.KindOpenMP || l.Kind == core.KindMain {
			if l.NVCtx > maxNV {
				maxNV = l.NVCtx
			}
			// Each thread only gets ~1/8 of the core.
			if tot := l.UTimePct + l.STimePct; tot > 30 {
				t.Fatalf("LWP %d utilization %.1f%%, want <30%% when oversubscribed", l.TID, tot)
			}
		}
	}
	if maxNV < 500 {
		t.Fatalf("max nvctx = %d, want hundreds+ under oversubscription", maxNV)
	}
	// Misconfiguration is detected.
	warnings := core.Evaluate(snap, core.EvalThresholds{})
	found := false
	for _, w := range warnings {
		if w.Kind == core.WarnSingleCore {
			found = true
		}
	}
	if !found {
		t.Fatalf("single-core misconfiguration not flagged: %v", warnings)
	}
}

func TestTable2Vs3Shape(t *testing.T) {
	res2 := runTable(t, 2, fastMonitor())
	res3 := runTable(t, 3, fastMonitor())
	snap2 := res2.Ranks[0].Snapshot
	snap3 := res3.Ranks[0].Snapshot

	// Table 2: threads unbound (full process cpuset).
	for _, l := range snap2.LWPs {
		if l.Kind == core.KindOpenMP {
			if l.Affinity.Count() != 7 {
				t.Fatalf("T2 LWP %d affinity = %s, want the 1-7 cpuset", l.TID, l.Affinity)
			}
		}
	}
	// Table 3: each OpenMP thread pinned to its own core and never
	// migrated.
	seen := map[int]bool{}
	for _, l := range snap3.LWPs {
		if l.Kind != core.KindOpenMP && l.Kind != core.KindMain {
			continue
		}
		if l.Affinity.Count() != 1 {
			t.Fatalf("T3 LWP %d affinity = %s, want one core", l.TID, l.Affinity)
		}
		c := l.Affinity.First()
		if seen[c] {
			t.Fatalf("T3 core %d assigned twice", c)
		}
		seen[c] = true
		if l.ObservedCPUs.Count() != 1 {
			t.Fatalf("T3 LWP %d migrated: observed %s", l.TID, l.ObservedCPUs)
		}
	}
	// Runtimes comparable between T2 and T3 (paper: 27.33 vs 27.40).
	r2, r3 := res2.WallSeconds, res3.WallSeconds
	if r2 <= 0 || r3 <= 0 {
		t.Fatalf("runtimes: %v %v", r2, r3)
	}
	if ratio := r2 / r3; ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("T2/T3 runtime ratio = %v, want ~1", ratio)
	}
	// High utilization in both.
	for _, l := range snap3.LWPs {
		if l.Kind == core.KindOpenMP {
			if tot := l.UTimePct + l.STimePct; tot < 70 {
				t.Fatalf("T3 LWP %d utilization %.1f%%, want high", l.TID, tot)
			}
		}
	}
}

func TestTable1SlowerThanTable3(t *testing.T) {
	res1 := runTable(t, 1, MonitorConfig{})
	res3 := runTable(t, 3, MonitorConfig{})
	ratio := res1.WallSeconds / res3.WallSeconds
	// Paper: 63.67/27.40 = 2.3x. Our bandwidth-bound model gives ~2.5x.
	if ratio < 1.8 || ratio > 4.0 {
		t.Fatalf("T1/T3 ratio = %.2f, want 2-3x", ratio)
	}
}

func TestTable3MonitorVictim(t *testing.T) {
	// Only the thread sharing the monitor's core shows elevated nvctx.
	res := runTable(t, 3, fastMonitor())
	snap := res.Ranks[0].Snapshot
	var monCPU int = -1
	for _, l := range snap.LWPs {
		if l.Kind == core.KindZeroSum {
			monCPU = l.Affinity.First()
		}
	}
	if monCPU < 0 {
		t.Fatal("no ZeroSum thread in report")
	}
	if monCPU != 7 {
		t.Fatalf("monitor on CPU %d, want last cpuset CPU 7", monCPU)
	}
	for _, l := range snap.LWPs {
		if l.Kind != core.KindOpenMP && l.Kind != core.KindMain {
			continue
		}
		if l.Affinity.First() == monCPU {
			if l.NVCtx < 5 {
				t.Fatalf("victim LWP %d nvctx = %d, want elevated", l.TID, l.NVCtx)
			}
		} else if l.NVCtx > 5 {
			t.Fatalf("non-victim LWP %d nvctx = %d, want ~0", l.TID, l.NVCtx)
		}
	}
}

func TestListing2OffloadRun(t *testing.T) {
	mq := scaledMiniQMC()
	mq.Threads = 4
	mq.Offload = &Offload{
		LaunchesPerStep: 10,
		KernelTime:      3 * sim.Millisecond,
		XferBytes:       1 << 20,
		LaunchCPU:       300 * sim.Microsecond,
		LaunchSysFrac:   0.45,
		VRAMBytes:       4 << 30,
	}
	res, err := Run(Config{
		Machine: topology.Frontier,
		App:     mq,
		Srun: slurm.Options{NTasks: 8, CoresPerTask: 7, GPUsPerTask: 1,
			GPUBind: slurm.GPUBindClosest},
		OMP:     openmp.Env{NumThreads: 4, Bind: openmp.BindSpread, Places: openmp.PlacesCores},
		Monitor: fastMonitor(),
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Ranks[0].Snapshot
	if len(snap.GPUs) != 1 {
		t.Fatalf("rank 0 GPUs = %d, want 1", len(snap.GPUs))
	}
	// Rank 0's visible device 0 is true GCD 4 (the paper's point).
	if snap.GPUs[0].TrueIndex != 4 {
		t.Fatalf("true index = %d, want 4", snap.GPUs[0].TrueIndex)
	}
	// GPU shows activity.
	var busyAvg, vram float64
	for _, metric := range snap.GPUs[0].Metrics {
		switch metric.Name {
		case "Device Busy %":
			busyAvg = metric.Agg.Avg()
		case "Used VRAM Bytes":
			vram = metric.Agg.Max
		}
	}
	if busyAvg <= 0 {
		t.Fatal("GPU busy average should be positive")
	}
	if vram < 4e9 {
		t.Fatalf("VRAM max = %v, want >= 4 GB allocation", vram)
	}
	// Offload sync shows up as voluntary context switches on walkers.
	var walkerVctx uint64
	for _, l := range snap.LWPs {
		if l.Kind == core.KindOpenMP {
			walkerVctx += l.VCtx
		}
	}
	if walkerVctx < 100 {
		t.Fatalf("walker vctx = %d, want many from kernel syncs", walkerVctx)
	}
	// The report renders the full Listing 2 structure.
	var sb strings.Builder
	if err := report.Write(&sb, snap, report.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Duration of execution", "GPU 0 - (metric: min avg max)", "Used VRAM Bytes"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestMonitorOverheadSmall(t *testing.T) {
	// Monitored vs bare runtime in the T3 configuration: overhead must be
	// well under 1% (the paper's headline claim).
	base := runTable(t, 3, MonitorConfig{})
	with := runTable(t, 3, MonitorConfig{Enabled: true, Period: sim.Second, CPU: -1})
	if base.WallSeconds <= 0 {
		t.Fatal("baseline runtime zero")
	}
	overhead := (with.WallSeconds - base.WallSeconds) / base.WallSeconds
	if overhead > 0.01 || overhead < -0.01 {
		t.Fatalf("overhead = %.4f, want |overhead| < 1%%", overhead)
	}
}

func TestJobDeterminism(t *testing.T) {
	a := runTable(t, 3, fastMonitor())
	b := runTable(t, 3, fastMonitor())
	if a.WallSeconds != b.WallSeconds {
		t.Fatalf("non-deterministic wall: %v vs %v", a.WallSeconds, b.WallSeconds)
	}
	for i := range a.Ranks {
		sa, sb := a.Ranks[i].Snapshot, b.Ranks[i].Snapshot
		if len(sa.LWPs) != len(sb.LWPs) {
			t.Fatalf("rank %d thread counts differ", i)
		}
		for j := range sa.LWPs {
			if sa.LWPs[j].NVCtx != sb.LWPs[j].NVCtx || sa.LWPs[j].VCtx != sb.LWPs[j].VCtx {
				t.Fatalf("rank %d LWP %d counters differ", i, j)
			}
		}
	}
}

func TestPICHeatmapShape(t *testing.T) {
	pic := DefaultPICHalo()
	pic.Steps = 5
	pic.ComputePerStep = 2 * sim.Millisecond
	const ranks = 32
	res, err := Run(Config{
		Machine: topology.Frontier,
		Nodes:   4,
		App:     pic,
		Srun:    slurm.Options{NTasks: ranks, CoresPerTask: 7},
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mat := res.World.RecvMatrix()
	// Nearest-neighbour volume dominates.
	var near, far, total uint64
	for d := 0; d < ranks; d++ {
		for s := 0; s < ranks; s++ {
			v := mat[d][s]
			total += v
			dist := (d - s + ranks) % ranks
			if dist == 1 || dist == ranks-1 {
				near += v
			} else if v > 0 {
				far += v
			}
		}
	}
	if total == 0 {
		t.Fatal("no communication recorded")
	}
	if frac := float64(near) / float64(total); frac < 0.7 {
		t.Fatalf("nearest-neighbour fraction = %v, want > 0.7", frac)
	}
	if far == 0 {
		t.Fatal("expected secondary band from far offsets")
	}
}

func TestProgressThreadInReport(t *testing.T) {
	res := runTable(t, 3, fastMonitor())
	snap := res.Ranks[0].Snapshot
	var other *core.ThreadSummary
	for i := range snap.LWPs {
		if snap.LWPs[i].Label == "Other" {
			other = &snap.LWPs[i]
		}
	}
	if other == nil {
		t.Fatal("MPI helper thread missing from report")
	}
	// Unbound: affinity much larger than the process cpuset.
	if other.Affinity.Count() <= 7 {
		t.Fatalf("helper affinity = %s, want the whole machine", other.Affinity)
	}
	if other.UTimePct+other.STimePct > 1 {
		t.Fatalf("helper should be nearly idle, got %.2f%%", other.UTimePct+other.STimePct)
	}
}

func TestMPIRankDetected(t *testing.T) {
	res := runTable(t, 2, fastMonitor())
	for i, rr := range res.Ranks {
		if rr.Snapshot.Rank != i {
			t.Fatalf("rank %d snapshot rank = %d", i, rr.Snapshot.Rank)
		}
		if rr.Snapshot.Size != 8 {
			t.Fatalf("size = %d", rr.Snapshot.Size)
		}
	}
}

func TestStreamReceivesSamples(t *testing.T) {
	var stream export.Stream
	n := 0
	stream.Subscribe(func(export.Event) { n++ })
	mon := fastMonitor()
	mon.Stream = &stream
	runTable(t, 3, mon)
	if n == 0 {
		t.Fatal("stream received nothing")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing machine should fail")
	}
	if _, err := Run(Config{Machine: topology.Frontier}); err == nil {
		t.Fatal("missing app should fail")
	}
	if _, err := Run(Config{Machine: topology.Frontier, App: scaledMiniQMC(),
		Srun: slurm.Options{NTasks: 1000}}); err == nil {
		t.Fatal("oversized job should fail")
	}
}

func TestSyntheticWorkload(t *testing.T) {
	res, err := Run(Config{
		Machine: topology.Laptop4Core,
		App:     &Synthetic{Threads: 4, Work: 50 * sim.Millisecond, Repeats: 2, SleepEvery: 10 * sim.Millisecond},
		Srun:    slurm.Options{NTasks: 1, CoresPerTask: 4, ThreadsPerCore: 2},
		Monitor: MonitorConfig{Enabled: true, Period: 20 * sim.Millisecond, CPU: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallSeconds <= 0 {
		t.Fatal("no runtime")
	}
	snap := res.Ranks[0].Snapshot
	if len(snap.LWPs) < 5 { // 4 workers + monitor (+helper)
		t.Fatalf("threads = %d", len(snap.LWPs))
	}
}

func TestPerfstubStepTimer(t *testing.T) {
	res := runTable(t, 3, MonitorConfig{})
	stubs := res.Ranks[0].Stubs
	if stubs == nil {
		t.Fatal("rank has no perfstub registry")
	}
	timers := stubs.Timers()
	if len(timers) != 1 || timers[0].Name != "miniqmc.step" {
		t.Fatalf("timers = %+v", timers)
	}
	st := timers[0]
	// 10 steps at scaled size: steps 2..N measured.
	if st.Count != 9 {
		t.Fatalf("step intervals = %d, want 9", st.Count)
	}
	// Each step is ~20ms of work at ~0.36x bandwidth throttle: ~56ms.
	if st.Mean() < 0.03 || st.Mean() > 0.12 {
		t.Fatalf("mean step = %vs, want ~0.056", st.Mean())
	}
	// The application timer and the monitor's system view must agree on
	// total runtime within a step.
	total := st.Total
	if total <= 0 || total > res.WallSeconds {
		t.Fatalf("timed total %v vs wall %v", total, res.WallSeconds)
	}
}

// TestAutoRebindRecoversPileup is the paper's §3.1 future-work feature end
// to end: a job whose OpenMP binding stacked every thread on one core is
// detected by the monitor after a few samples and automatically spread
// across the cpuset, recovering most of the lost performance mid-run.
func TestAutoRebindRecoversPileup(t *testing.T) {
	run := func(rebind bool) *Result {
		mq := DefaultMiniQMC()
		mq.Steps = 40
		mq.WorkPerStep = 20 * sim.Millisecond
		mon := MonitorConfig{Enabled: true, Period: 100 * sim.Millisecond, CPU: -1}
		if rebind {
			mon.RebindAfter = 3
		}
		res, err := Run(Config{
			Machine: topology.Frontier,
			App:     mq,
			Srun:    slurm.Options{NTasks: 8, CoresPerTask: 7},
			// The misconfiguration: master binding stacks the team on the
			// first core of a 7-core cpuset.
			OMP:     openmp.Env{NumThreads: 7, Bind: openmp.BindMaster, Places: openmp.PlacesCores},
			Monitor: mon,
			Sched:   sched.Params{Quantum: 200 * sim.Microsecond, Timeslice: 400 * sim.Microsecond},
			Seed:    33,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	broken := run(false)
	fixed := run(true)

	mon := fixed.Ranks[0].Monitor
	if len(mon.Rebinds()) == 0 {
		t.Fatal("no rebind events recorded")
	}
	// The rebind spread threads over distinct cores.
	seen := map[int]bool{}
	for _, ev := range mon.Rebinds() {
		c := ev.To.First()
		if seen[c] {
			t.Fatalf("rebind target core %d used twice", c)
		}
		seen[c] = true
	}
	speedup := broken.WallSeconds / fixed.WallSeconds
	if speedup < 1.5 {
		t.Fatalf("auto-rebind speedup = %.2fx, want >= 1.5x", speedup)
	}
	// Post-rebind, threads actually executed on distinct cores.
	snap := fixed.Ranks[0].Snapshot
	multi := 0
	for _, l := range snap.LWPs {
		if (l.Kind == core.KindOpenMP || l.Kind == core.KindMain) && l.ObservedCPUs.Count() > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no thread observed on a new CPU after rebinding")
	}
}

// TestCheckpointIOMonitored: the master thread writes checkpoints through
// the shared filesystem; the monitor observes the I/O via /proc/<pid>/io
// and the contention between concurrently checkpointing ranks shows up as
// wall time (the Darshan-flavoured path).
func TestCheckpointIOMonitored(t *testing.T) {
	mk := func(fsBW float64) *Result {
		mq := scaledMiniQMC()
		mq.Checkpoint = &Checkpoint{EverySteps: 2, Bytes: 200 << 20} // 200 MB
		res, err := Run(Config{
			Machine: topology.Frontier,
			App:     mq,
			Srun:    slurm.Options{NTasks: 8, CoresPerTask: 7},
			OMP:     openmp.Env{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores},
			Monitor: MonitorConfig{Enabled: true, Period: 100 * sim.Millisecond, CPU: -1},
			FS:      &fsio.Params{BytesPerSec: fsBW, LatencyPerOp: sim.Millisecond},
			Seed:    55,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := mk(50e9)
	slow := mk(2e9)

	// The monitor saw the write counters.
	snap := fast.Ranks[0].Snapshot
	wantBytes := uint64(5) * (200 << 20) // 10 steps / every 2
	if snap.IOWriteBytes != wantBytes {
		t.Fatalf("monitored write bytes = %d, want %d", snap.IOWriteBytes, wantBytes)
	}
	if snap.IOWriteSyscall != 5 {
		t.Fatalf("write ops = %d, want 5", snap.IOWriteSyscall)
	}
	// Filesystem stats aggregate all 8 ranks.
	r, w, _, wops := fast.FS.Stats()
	if w != 8*wantBytes || wops != 40 {
		t.Fatalf("fs totals: read=%d written=%d wops=%d", r, w, wops)
	}
	// A slower filesystem makes the job measurably slower: 8 ranks x 1 GB
	// through a shared server.
	if slow.WallSeconds <= fast.WallSeconds*1.2 {
		t.Fatalf("slow FS wall %v vs fast %v: expected visible I/O contention",
			slow.WallSeconds, fast.WallSeconds)
	}
	// And the CSV export carries the series.
	var sb strings.Builder
	if err := fast.Ranks[0].Monitor.WriteIOCSV(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := export.ReadIOCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 || samples[len(samples)-1].WriteBytes != wantBytes {
		t.Fatalf("io csv: %d samples, last %+v", len(samples), samples[len(samples)-1])
	}
}
