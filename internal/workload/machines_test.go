package workload

import (
	"strings"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/fsio"
	"zerosum/internal/openmp"
	"zerosum/internal/report"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
)

// TestSummitJob runs a 6-rank GPU job on a Summit node (2 sockets, SMT4,
// 6 V100s): one rank per GPU, closest binding.
func TestSummitJob(t *testing.T) {
	mq := scaledMiniQMC()
	mq.Threads = 4
	mq.Offload = &Offload{
		LaunchesPerStep: 20, KernelTime: sim.Millisecond,
		XferBytes: 1 << 20, LaunchCPU: 100 * sim.Microsecond, LaunchSysFrac: 0.3,
		VRAMBytes: 8 << 30,
	}
	res, err := Run(Config{
		Machine: topology.Summit,
		App:     mq,
		Srun: slurm.Options{NTasks: 6, CoresPerTask: 7, GPUsPerTask: 1,
			GPUBind: slurm.GPUBindClosest},
		OMP:     openmp.Env{NumThreads: 4, Bind: openmp.BindSpread, Places: openmp.PlacesCores},
		Monitor: fastMonitor(),
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 6 {
		t.Fatalf("ranks = %d", len(res.Ranks))
	}
	// GPU locality: ranks on socket 0 get GPUs 0-2, socket 1 -> 3-5.
	gpusSeen := map[int]bool{}
	for _, rr := range res.Ranks {
		if len(rr.Snapshot.GPUs) != 1 {
			t.Fatalf("rank %d GPUs = %d", rr.Rank, len(rr.Snapshot.GPUs))
		}
		idx := rr.Snapshot.GPUs[0].TrueIndex
		if gpusSeen[idx] {
			t.Fatalf("GPU %d assigned twice", idx)
		}
		gpusSeen[idx] = true
	}
	if len(gpusSeen) != 6 {
		t.Fatalf("distinct GPUs = %d", len(gpusSeen))
	}
	// SMT4 cores: the cpuset has 4 HWTs per core when tpc unlimited...
	// here tpc defaults to 1; affinity counts 7 PUs.
	if got := res.Ranks[0].Snapshot.ProcessAff.Count(); got != 7 {
		t.Fatalf("rank 0 cpuset = %d PUs", got)
	}
}

// TestPerlmutterJob exercises a CPU-only job on Perlmutter with SMT2.
func TestPerlmutterJob(t *testing.T) {
	mq := scaledMiniQMC()
	mq.Threads = 8
	res, err := Run(Config{
		Machine: topology.Perlmutter,
		App:     mq,
		Srun:    slurm.Options{NTasks: 4, CoresPerTask: 4, ThreadsPerCore: 2},
		OMP:     openmp.Env{NumThreads: 8, Bind: openmp.BindClose, Places: openmp.PlacesThreads},
		Monitor: fastMonitor(),
		Seed:    12,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Ranks[0].Snapshot
	// 4 cores x 2 HWT = 8 PUs in the cpuset; 8 threads bound one per HWT.
	if got := snap.ProcessAff.Count(); got != 8 {
		t.Fatalf("cpuset = %d PUs, want 8", got)
	}
	pinned := 0
	for _, l := range snap.LWPs {
		if l.Kind == core.KindOpenMP || l.Kind == core.KindMain {
			if l.Affinity.Count() == 1 {
				pinned++
			}
		}
	}
	if pinned != 8 {
		t.Fatalf("pinned team threads = %d, want 8", pinned)
	}
	// SMT slows things: 8 threads on 4 cores must take longer than the
	// same work on 8 cores would.
	if res.WallSeconds <= 0 {
		t.Fatal("no runtime")
	}
}

// TestAuroraJob exercises the 2-socket Aurora preset with socket places.
func TestAuroraJob(t *testing.T) {
	mq := scaledMiniQMC()
	mq.Threads = 4
	res, err := Run(Config{
		Machine: topology.Aurora,
		App:     mq,
		Srun:    slurm.Options{NTasks: 2, CoresPerTask: 8},
		OMP:     openmp.Env{NumThreads: 4, Bind: openmp.BindClose, Places: openmp.PlacesSockets},
		Monitor: fastMonitor(),
		Seed:    13,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Ranks[0].Snapshot
	// Socket places: bindings cover whole sockets intersected with the
	// cpuset, i.e. each team thread keeps the full 8-core cpuset.
	for _, l := range snap.LWPs {
		if l.Kind == core.KindOpenMP {
			if l.Affinity.Count() != 8 {
				t.Fatalf("socket-bound thread affinity = %d PUs, want 8", l.Affinity.Count())
			}
		}
	}
	var sb strings.Builder
	if err := report.Write(&sb, snap, report.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aurora") {
		t.Fatalf("hostname missing: %s", sb.String())
	}
}

// TestLaptopFullMachine runs on the Listing 1 laptop with all HWTs.
func TestLaptopFullMachine(t *testing.T) {
	res, err := Run(Config{
		Machine: topology.Laptop4Core,
		App:     &Synthetic{Threads: 8, Work: 100 * sim.Millisecond},
		Srun:    slurm.Options{NTasks: 1, CoresPerTask: 4, ThreadsPerCore: 2},
		OMP:     openmp.Env{NumThreads: 8, Bind: openmp.BindClose, Places: openmp.PlacesThreads},
		Monitor: fastMonitor(),
		Seed:    14,
	})
	if err != nil {
		t.Fatal(err)
	}
	// SMT pairs: with all 8 HWTs busy, wall stretches beyond 100ms by the
	// SMT factor (0.62): ~161ms.
	if res.WallSeconds < 0.14 || res.WallSeconds > 0.22 {
		t.Fatalf("wall = %v, want ~0.16 (SMT-limited)", res.WallSeconds)
	}
}

// TestGPUOOMPropagates: an offload app that over-allocates VRAM fails
// loudly (the resource-exhaustion case from §3.5).
func TestGPUOOMPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VRAM over-allocation should panic the build")
		}
	}()
	mq := scaledMiniQMC()
	mq.Threads = 2
	mq.Offload = &Offload{
		LaunchesPerStep: 2, KernelTime: sim.Millisecond,
		LaunchCPU: 100 * sim.Microsecond,
		VRAMBytes: 1 << 40, // 1 TB on a 64 GB device
	}
	_, _ = Run(Config{
		Machine: topology.Frontier,
		App:     mq,
		Srun: slurm.Options{NTasks: 1, CoresPerTask: 7, GPUsPerTask: 1,
			GPUBind: slurm.GPUBindClosest},
		OMP:  openmp.Env{NumThreads: 2},
		Seed: 15,
	})
}

// TestNoisyNeighborSlowsCheckpoints: the Bhatele-motivated scenario from
// the paper's §2 — the same miniQMC checkpointing job runs alone and next
// to I/O-hogging neighbour ranks sharing the parallel filesystem; the
// neighbours visibly stretch the victim's runtime, and ZeroSum's I/O
// counters attribute the victim's own traffic correctly.
func TestNoisyNeighborSlowsCheckpoints(t *testing.T) {
	victim := func(neighbors bool) *Result {
		mq := scaledMiniQMC()
		mq.Threads = 7
		mq.Checkpoint = &Checkpoint{EverySteps: 2, Bytes: 100 << 20}
		var app App = mq
		ranks := 4
		if neighbors {
			app = &Partitioned{Split: 4, First: mq, Rest: &IOHog{Writes: 30, Bytes: 512 << 20}}
			ranks = 8
		}
		res, err := Run(Config{
			Machine: topology.Frontier,
			App:     app,
			Srun:    slurm.Options{NTasks: ranks, CoresPerTask: 7},
			OMP:     openmp.Env{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores},
			Monitor: fastMonitor(),
			FS:      &fsio.Params{BytesPerSec: 3e9, LatencyPerOp: sim.Millisecond},
			Seed:    77,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	alone := victim(false)
	crowded := victim(true)
	// The victim ranks are 0..3 in both runs; compare their runtimes.
	slowest := func(res *Result) float64 {
		worst := 0.0
		for _, rr := range res.Ranks[:4] {
			if rr.AppRuntime > worst {
				worst = rr.AppRuntime
			}
		}
		return worst
	}
	a, c := slowest(alone), slowest(crowded)
	if c < a*1.15 {
		t.Fatalf("neighbours should slow the victim: alone %.3fs vs crowded %.3fs", a, c)
	}
	// ZeroSum attributes per-process I/O: the victim's own write volume is
	// identical in both runs (5 checkpoints x 100 MB).
	want := uint64(5 * (100 << 20))
	for _, res := range []*Result{alone, crowded} {
		if got := res.Ranks[0].Snapshot.IOWriteBytes; got != want {
			t.Fatalf("victim write bytes = %d, want %d", got, want)
		}
	}
	// And the hogs' volume shows up on their own rows only.
	hogBytes := crowded.Ranks[7].Snapshot.IOWriteBytes
	if hogBytes != 30*(512<<20) {
		t.Fatalf("hog write bytes = %d", hogBytes)
	}
}
