package workload

import (
	"zerosum/internal/sched"
	"zerosum/internal/sim"
)

// MiniQMC is a proxy for the ECP miniQMC application the paper evaluates
// with: an MPI+OpenMP real-space quantum Monte Carlo kernel where each
// OpenMP thread advances one walker per step (so thread count controls
// walker count), the inner loop is partially memory-bandwidth-bound, and a
// variant offloads the walker update to a GPU via many small kernel
// launches (the OpenMP target-offload build of Listing 2).
type MiniQMC struct {
	// Threads is the OpenMP team size (OMP_NUM_THREADS); 0 uses the
	// runtime default (one per cpuset PU).
	Threads int
	// Steps is the number of Monte Carlo steps (each ends in a barrier).
	Steps int
	// WorkPerStep is full-speed CPU per thread per step.
	WorkPerStep sim.Time
	// BytesPerSec is the memory-bandwidth demand of the walker update.
	// ~10 GB/s per thread reproduces the paper's miniQMC behaviour on a
	// 50 GB/s NUMA domain: one core cannot saturate the controller but
	// seven can, which is why `-c7` is only ~2.5x faster than one core.
	BytesPerSec float64
	// SysFrac is the syscall share of CPU time (I/O, allocator).
	SysFrac float64
	// JitterFrac randomizes each step's work by +/- this fraction,
	// modelling per-walker variability.
	JitterFrac float64
	// RunJitter is the standard deviation of a per-run multiplicative
	// work factor (node-level variability between runs in the same
	// allocation: DVFS, noisy neighbours, network); it produces the
	// run-to-run runtime spread the Figure 8 distributions measure.
	RunJitter float64

	// runFactor is the lazily drawn per-run multiplier.
	runFactor float64
	// MinfltPerSec adds minor page faults while computing.
	MinfltPerSec float64
	// RSSKB is the process footprint (default 1.5 GB).
	RSSKB uint64
	// Offload, when non-nil, switches to the GPU target-offload variant.
	Offload *Offload
	// Checkpoint, when non-nil, makes the master thread write periodic
	// checkpoints through the job's shared filesystem.
	Checkpoint *Checkpoint
}

// Checkpoint configures periodic state dumps (a classic HPC I/O pattern;
// requires Config.FS on the job).
type Checkpoint struct {
	// EverySteps is the checkpoint interval in Monte Carlo steps.
	EverySteps int
	// Bytes per checkpoint per rank.
	Bytes uint64
}

// Offload configures the GPU variant.
type Offload struct {
	// LaunchesPerStep is how many target-offload kernels each thread
	// submits per step (data transfer + kernel + sync each time).
	LaunchesPerStep int
	// KernelTime is device time per launch.
	KernelTime sim.Time
	// XferBytes moves host->device per launch.
	XferBytes uint64
	// LaunchCPU is host CPU burned per launch (syscall-heavy: the paper's
	// offload run shows ~12% stime from transfers/launch/sync).
	LaunchCPU sim.Time
	// LaunchSysFrac is the syscall share of launch CPU.
	LaunchSysFrac float64
	// VRAMBytes is allocated on the device at startup.
	VRAMBytes uint64
}

// Name labels the simulated process.
func (mq *MiniQMC) Name() string { return "miniqmc" }

// DefaultMiniQMC returns the CPU configuration calibrated against the
// paper's Frontier runs (Tables 1-3): with `srun -n8 -c7` it runs ~27 s;
// with default srun (one core per rank) ~65 s.
func DefaultMiniQMC() *MiniQMC {
	return &MiniQMC{
		Steps:        96,
		WorkPerStep:  100 * sim.Millisecond,
		BytesPerSec:  10e9,
		SysFrac:      0.012,
		JitterFrac:   0.01,
		MinfltPerSec: 40,
		RSSKB:        1536 << 10,
	}
}

// Build implements App.
func (mq *MiniQMC) Build(rc *RankCtx) error {
	steps := mq.Steps
	if steps <= 0 {
		steps = 10
	}
	n := mq.Threads
	if n <= 0 {
		n = rc.OMP.TeamSize(rc.Proc.Affinity)
	}
	if mq.runFactor == 0 {
		mq.runFactor = 1
		if mq.RunJitter > 0 {
			mq.runFactor = 1 + mq.RunJitter*rc.Job.RNG.Norm(0, 1)
		}
	}
	runFactor := mq.runFactor
	barrier := rc.K.NewBarrier(n)
	rssKB := mq.RSSKB
	if rssKB == 0 {
		rssKB = 1536 << 10
	}

	// Per-thread behavior: walker updates separated by team barriers, in
	// an explicit two-phase state machine (work, then barrier).
	mkWalker := func(threadNum int) sched.Behavior {
		rng := rc.RNG.Fork()
		step := 0
		phase := 0 // 0 = init/work, 1 = barrier
		launch := 0
		started := false
		var pending []sched.Action // queued checkpoint I/O actions
		return sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
			if len(pending) > 0 {
				a := pending[0]
				pending = pending[1:]
				return a
			}
			if !started {
				started = true
				if threadNum == 0 {
					return sched.Call{Fn: func(sim.Time) {
						rc.Proc.SetRSS(rssKB)
						rc.Proc.SetVmSize(rssKB * 2)
						rc.MPI.Init()
						if mq.Offload != nil && len(rc.Devices) > 0 && mq.Offload.VRAMBytes > 0 {
							dev := rc.Devices[0]
							if err := dev.AllocVRAM(mq.Offload.VRAMBytes); err != nil {
								panic(err)
							}
							dev.SetGTT(11624448)
						}
					}}
				}
			}
			for {
				if step >= steps {
					return nil
				}
				switch phase {
				case 0:
					if mq.Offload != nil {
						off := mq.Offload
						if launch < off.LaunchesPerStep*2 {
							i := launch
							launch++
							if i%2 == 0 {
								return sched.Compute{Work: off.LaunchCPU, SysFrac: off.LaunchSysFrac}
							}
							dev := rc.Devices[threadNum%max(len(rc.Devices), 1)]
							done := dev.Submit(off.KernelTime, off.XferBytes)
							if wait := done - now; wait > 0 {
								return sched.Sleep{D: wait}
							}
							continue
						}
						launch = 0
						phase = 1
						continue
					}
					work := sim.Time(float64(mq.WorkPerStep) * runFactor)
					if mq.JitterFrac > 0 {
						work = sim.Time(float64(work) * (1 + (rng.Float64()*2-1)*mq.JitterFrac))
					}
					phase = 1
					return sched.Compute{
						Work:         work,
						SysFrac:      mq.SysFrac,
						BytesPerSec:  mq.BytesPerSec,
						MinfltPerSec: mq.MinfltPerSec,
					}
				case 1:
					// The master thread times steps through the PerfStubs
					// registry (application/system correlation, paper §6):
					// close the previous step's interval at each step end
					// and open the next one, so steps 2..N are measured.
					if threadNum == 0 && rc.Stubs != nil {
						stepTimer := rc.Stubs.Timer("miniqmc.step")
						stepTimer.Stop()
						if step < steps-1 {
							stepTimer.Start()
						}
					}
					phase = 0
					step++
					// Master checkpoints through the shared filesystem.
					if cp := mq.Checkpoint; cp != nil && threadNum == 0 && rc.FS != nil &&
						cp.EverySteps > 0 && step%cp.EverySteps == 0 {
						pending = append(pending, rc.FS.WriteAction(rc.Proc, cp.Bytes, nil)...)
						pending = append(pending, sched.WaitBarrier{B: barrier})
						a := pending[0]
						pending = pending[1:]
						return a
					}
					return sched.WaitBarrier{B: barrier}
				}
			}
		})
	}

	master := rc.K.NewTask(rc.Proc, mq.Name(), mkWalker(0))
	rc.OMP.Launch(rc.Proc, master, n, mkWalker)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
