package workload

import (
	"fmt"

	"zerosum/internal/sched"
	"zerosum/internal/sim"
)

// Partitioned splits a job's ranks between two applications — the tool for
// noisy-neighbour studies (Bhatele et al., cited in the paper's §2): the
// ranks of interest run one workload while neighbour ranks hammer a shared
// resource (filesystem, NIC) from the same allocation.
type Partitioned struct {
	// Split is the first rank that runs Rest; ranks [0, Split) run First.
	Split int
	First App
	Rest  App
}

// Name labels the simulated processes.
func (p *Partitioned) Name() string {
	if n, ok := p.First.(interface{ Name() string }); ok {
		return n.Name()
	}
	return "mixed"
}

// Build implements App.
func (p *Partitioned) Build(rc *RankCtx) error {
	if p.First == nil || p.Rest == nil {
		return fmt.Errorf("workload: Partitioned needs both First and Rest")
	}
	if rc.Rank < p.Split {
		return p.First.Build(rc)
	}
	return p.Rest.Build(rc)
}

// IOHog is a neighbour workload that repeatedly writes large buffers to the
// shared filesystem, contending with whatever else uses it.
type IOHog struct {
	// Writes is how many buffers each rank writes.
	Writes int
	// Bytes per write.
	Bytes uint64
}

// Name labels the simulated process.
func (h *IOHog) Name() string { return "iohog" }

// Build implements App.
func (h *IOHog) Build(rc *RankCtx) error {
	if rc.FS == nil {
		return fmt.Errorf("workload: IOHog needs Config.FS")
	}
	writes := h.Writes
	if writes <= 0 {
		writes = 10
	}
	bytes := h.Bytes
	if bytes == 0 {
		bytes = 256 << 20
	}
	acts := []sched.Action{sched.Call{Fn: func(sim.Time) { rc.MPI.Init() }}}
	for i := 0; i < writes; i++ {
		acts = append(acts, sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.5})
		acts = append(acts, rc.FS.WriteAction(rc.Proc, bytes, func(error) {})...)
	}
	rc.K.NewTask(rc.Proc, h.Name(), sched.Seq(acts...))
	return nil
}
