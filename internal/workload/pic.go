package workload

import (
	"zerosum/internal/sched"
	"zerosum/internal/sim"
)

// PICHalo is a proxy for the gyrokinetic particle-in-cell code behind the
// paper's Figure 5: each rank advances particles, then halo-exchanges with
// its neighbours in a 1D ring (offsets ±1 dominate, with weaker longer-range
// exchanges), producing the strong near-diagonal structure of the
// communication heatmap.
type PICHalo struct {
	// Steps is the number of simulation steps.
	Steps int
	// ComputePerStep is CPU work between exchanges.
	ComputePerStep sim.Time
	// HaloBytes is the per-neighbour message size for the ±1 exchange.
	HaloBytes uint64
	// FarOffsets adds longer-range neighbours (e.g. ±16 for a 2D
	// decomposition folded into rank order) at FarBytes each.
	FarOffsets []int
	FarBytes   uint64
}

// Name labels the simulated process.
func (p *PICHalo) Name() string { return "pic" }

// DefaultPICHalo returns a configuration whose 512-rank heatmap matches
// Figure 5's shape: ~1.75e10 bytes between nearest neighbours over the run
// with a secondary band from the folded second dimension.
func DefaultPICHalo() *PICHalo {
	return &PICHalo{
		Steps:          50,
		ComputePerStep: 20 * sim.Millisecond,
		HaloBytes:      7 << 20, // 7 MB per neighbour per step
		FarOffsets:     []int{-16, 16},
		FarBytes:       1 << 20,
	}
}

// Build implements App: a single-threaded MPI rank (the paper's PIC run
// uses 512 ranks; thread-level detail is irrelevant to the heatmap).
func (p *PICHalo) Build(rc *RankCtx) error {
	steps := p.Steps
	if steps <= 0 {
		steps = 10
	}
	size := rc.MPI.Size()
	neighbours := []int{-1, 1}
	neighbours = append(neighbours, p.FarOffsets...)

	var acts []sched.Action
	acts = append(acts, sched.Call{Fn: func(sim.Time) {
		rc.Proc.SetRSS(512 << 10)
		rc.MPI.Init()
	}})
	for s := 0; s < steps; s++ {
		acts = append(acts, sched.Compute{Work: p.ComputePerStep, SysFrac: 0.02, BytesPerSec: 4e9})
		// Post all sends, then drain all receives (standard halo pattern).
		for _, off := range neighbours {
			dst := ((rc.Rank+off)%size + size) % size
			if dst == rc.Rank {
				continue
			}
			bytes := p.HaloBytes
			if off != -1 && off != 1 {
				bytes = p.FarBytes
			}
			acts = append(acts, rc.MPI.SendAction(dst, bytes))
		}
		for _, off := range neighbours {
			src := ((rc.Rank+off)%size + size) % size
			if src == rc.Rank {
				continue
			}
			acts = append(acts, rc.MPI.RecvActions(src)...)
		}
	}
	rc.K.NewTask(rc.Proc, p.Name(), sched.Seq(acts...))
	return nil
}

// Synthetic is a minimal configurable load for examples and tests: N
// threads each burning CPU with optional memory-bandwidth demand, no
// synchronization.
type Synthetic struct {
	Threads     int
	Work        sim.Time
	SysFrac     float64
	BytesPerSec float64
	// SleepEvery inserts a sleep after each Work chunk, Repeats times.
	SleepEvery sim.Time
	Repeats    int
}

// Name labels the simulated process.
func (s *Synthetic) Name() string { return "synthetic" }

// Build implements App.
func (s *Synthetic) Build(rc *RankCtx) error {
	n := s.Threads
	if n <= 0 {
		n = 1
	}
	reps := s.Repeats
	if reps <= 0 {
		reps = 1
	}
	mk := func(i int) sched.Behavior {
		var acts []sched.Action
		if i == 0 {
			acts = append(acts, sched.Call{Fn: func(sim.Time) { rc.MPI.Init() }})
		}
		for r := 0; r < reps; r++ {
			acts = append(acts, sched.Compute{Work: s.Work, SysFrac: s.SysFrac, BytesPerSec: s.BytesPerSec})
			if s.SleepEvery > 0 {
				acts = append(acts, sched.Sleep{D: s.SleepEvery})
			}
		}
		return sched.Seq(acts...)
	}
	master := rc.K.NewTask(rc.Proc, s.Name(), mk(0))
	if n > 1 {
		rc.OMP.Launch(rc.Proc, master, n, mk)
	}
	return nil
}
