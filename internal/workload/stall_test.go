package workload

// Deterministic stall-detector scenarios (§3.3) driven by the sched
// simulator: a two-thread app whose worker can progress, stall, recover
// or flap, observed through the monitor's export stream and end-of-run
// snapshot. Also the §4.1 acceptance tests for the self-observability
// layer: measured overhead stays under the 0.5 % budget at 1 Hz, and an
// artificially tiny budget makes the watchdog degrade the sampling rate.

import (
	"strings"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/obs"
	"zerosum/internal/report"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
)

// stallApp runs a continuously-computing main thread until mainUntil plus
// one worker thread with a scenario-specific behavior.
type stallApp struct {
	mainUntil sim.Time
	worker    func(app *stallApp) sched.BehaviorFunc

	workerTID int
	midSnap   *core.Snapshot // captured by main at midAt when set
	midAt     sim.Time
	rc        *RankCtx
}

func (a *stallApp) Name() string { return "stallapp" }

func (a *stallApp) Build(rc *RankCtx) error {
	a.rc = rc
	captured := false
	main := sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
		if a.midAt > 0 && !captured && now >= a.midAt {
			captured = true
			return sched.Call{Fn: func(sim.Time) {
				snap := rc.Monitor.Snapshot()
				a.midSnap = &snap
			}}
		}
		if now >= a.mainUntil {
			return nil
		}
		return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
	})
	rc.K.NewTask(rc.Proc, "main", main)
	w := rc.K.NewTask(rc.Proc, "worker", a.worker(a))
	a.workerTID = w.TID
	return nil
}

// computeUntil keeps the worker progressing until deadline, then exits.
func computeUntil(deadline sim.Time) sched.BehaviorFunc {
	return func(t *sched.Task, now sim.Time) sched.Action {
		if now >= deadline {
			return nil
		}
		return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
	}
}

// runStallScenario runs one rank on a laptop-class node with StallTicks
// enabled and returns the result plus the worker's streamed LWP samples in
// arrival order.
func runStallScenario(t *testing.T, app *stallApp, stallTicks int) (*Result, []export.LWPSample) {
	t.Helper()
	var stream export.Stream
	var samples []export.LWPSample
	workerTID := func() int { return app.workerTID }
	stream.Subscribe(func(ev export.Event) {
		if ev.Kind == export.EventLWP && ev.LWP.TID == workerTID() {
			samples = append(samples, *ev.LWP)
		}
	})
	res, err := Run(Config{
		Machine: topology.Laptop4Core,
		App:     app,
		Srun:    slurm.Options{NTasks: 1, CoresPerTask: 4},
		Monitor: MonitorConfig{
			Enabled: true, Period: 100 * sim.Millisecond, CPU: -1,
			StallTicks: stallTicks,
			Stream:     &stream,
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, samples
}

func workerSummary(t *testing.T, res *Result, tid int) core.ThreadSummary {
	t.Helper()
	for _, l := range res.Ranks[0].Snapshot.LWPs {
		if l.TID == tid {
			return l
		}
	}
	t.Fatalf("worker TID %d missing from snapshot", tid)
	return core.ThreadSummary{}
}

func TestStallScenarioProgressing(t *testing.T) {
	app := &stallApp{
		mainUntil: 3 * sim.Second,
		worker:    func(*stallApp) sched.BehaviorFunc { return computeUntil(3 * sim.Second) },
	}
	res, samples := runStallScenario(t, app, 5)
	if len(samples) == 0 {
		t.Fatal("no worker samples streamed")
	}
	for _, s := range samples {
		if s.Stalled {
			t.Fatalf("progressing worker flagged stalled at t=%.2f", s.TimeSec)
		}
	}
	w := workerSummary(t, res, app.workerTID)
	if w.Stalled || w.StallEvents != 0 {
		t.Fatalf("progressing worker: stalled=%v events=%d", w.Stalled, w.StallEvents)
	}
	if w.Beats == 0 {
		t.Fatal("progressing worker recorded no heartbeats")
	}
	if res.Ranks[0].Snapshot.StalledLWPs != 0 {
		t.Fatalf("StalledLWPs = %d, want 0", res.Ranks[0].Snapshot.StalledLWPs)
	}
}

func TestStallScenarioStalled(t *testing.T) {
	// Worker computes for 1 s, then blocks in one long sleep until the end
	// of the run: the §3.3 detector must flag it within StallTicks samples
	// (plus scheduling slack) of the last beat.
	const stallTicks = 5
	app := &stallApp{
		mainUntil: 4 * sim.Second,
		midAt:     3 * sim.Second,
		worker: func(*stallApp) sched.BehaviorFunc {
			slept := false
			return func(t *sched.Task, now sim.Time) sched.Action {
				if now < sim.Second {
					return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
				}
				if !slept {
					slept = true
					return sched.Sleep{D: 4*sim.Second - now}
				}
				return nil
			}
		},
	}
	res, samples := runStallScenario(t, app, stallTicks)

	first := -1.0
	for _, s := range samples {
		if s.Stalled {
			first = s.TimeSec
			break
		}
	}
	if first < 0 {
		t.Fatal("stalled worker never flagged")
	}
	// Last beat at ~1.1 s (the sleep's voluntary switch); the flag must
	// appear within stallTicks+3 samples of it at a 100 ms period.
	if latest := 1.1 + float64(stallTicks+3)*0.1; first > latest {
		t.Fatalf("stall flagged at t=%.2f, want <= %.2f", first, latest)
	}
	// The worker exits (with the app) while still flagged, so its very last
	// sample is the synthetic Stalled=false clear the monitor ships for a
	// gone thread; every sample in between stays flagged.
	if len(samples) < 2 {
		t.Fatalf("want stalled samples plus a final clear, got %d samples", len(samples))
	}
	if last := samples[len(samples)-1]; last.Stalled {
		t.Fatalf("dead worker's final sample still stalled (t=%.2f)", last.TimeSec)
	}
	if prev := samples[len(samples)-2]; !prev.Stalled {
		t.Fatalf("worker's last live sample not stalled (t=%.2f)", prev.TimeSec)
	}
	w := workerSummary(t, res, app.workerTID)
	if w.StallEvents != 1 {
		t.Fatalf("stall events = %d, want 1", w.StallEvents)
	}

	// The mid-run snapshot (taken while the worker was stalled) renders the
	// stall in the Listing-2 report.
	if app.midSnap == nil {
		t.Fatal("mid-run snapshot not captured")
	}
	if app.midSnap.StalledLWPs != 1 {
		t.Fatalf("mid-run StalledLWPs = %d, want 1", app.midSnap.StalledLWPs)
	}
	var sb strings.Builder
	if err := report.Write(&sb, *app.midSnap, report.Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "stalled: yes") {
		t.Errorf("mid-run report missing stalled flag:\n%s", out)
	}
	if !strings.Contains(out, "made no progress") {
		t.Errorf("mid-run report missing stall warning:\n%s", out)
	}
}

func TestStallScenarioRecovering(t *testing.T) {
	// Worker stalls from 1 s to 2.5 s, then resumes computing: the flag
	// must clear and the episode must be counted exactly once.
	app := &stallApp{
		mainUntil: 4 * sim.Second,
		worker: func(*stallApp) sched.BehaviorFunc {
			slept := false
			return func(t *sched.Task, now sim.Time) sched.Action {
				if now < sim.Second {
					return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
				}
				if !slept {
					slept = true
					return sched.Sleep{D: 1500 * sim.Millisecond}
				}
				if now >= 4*sim.Second {
					return nil
				}
				return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
			}
		},
	}
	res, samples := runStallScenario(t, app, 5)

	sawStalled, sawRecovered := false, false
	for _, s := range samples {
		if s.Stalled {
			sawStalled = true
		} else if sawStalled {
			sawRecovered = true
		}
	}
	if !sawStalled {
		t.Fatal("worker never flagged during its 1.5 s stall")
	}
	if !sawRecovered {
		t.Fatal("stall flag never cleared after the worker resumed")
	}
	w := workerSummary(t, res, app.workerTID)
	if w.Stalled {
		t.Fatal("recovered worker still flagged in the final snapshot")
	}
	if w.StallEvents != 1 {
		t.Fatalf("stall events = %d, want 1", w.StallEvents)
	}
	if res.Ranks[0].Snapshot.StalledLWPs != 0 {
		t.Fatalf("StalledLWPs = %d, want 0 after recovery", res.Ranks[0].Snapshot.StalledLWPs)
	}
}

func TestStallScenarioFlapping(t *testing.T) {
	// Worker alternates 1.2 s sleeps with short compute bursts: each cycle
	// is one distinct stall episode.
	app := &stallApp{
		mainUntil: 6 * sim.Second,
		worker: func(*stallApp) sched.BehaviorFunc {
			step := 0
			return func(t *sched.Task, now sim.Time) sched.Action {
				if now >= 6*sim.Second {
					return nil
				}
				step++
				if step%2 == 1 {
					return sched.Compute{Work: 50 * sim.Millisecond, SysFrac: 0.05}
				}
				return sched.Sleep{D: 1200 * sim.Millisecond}
			}
		},
	}
	res, samples := runStallScenario(t, app, 5)

	transitions := 0
	prev := false
	for _, s := range samples {
		if s.Stalled && !prev {
			transitions++
		}
		prev = s.Stalled
	}
	if transitions < 2 {
		t.Fatalf("flapping worker produced %d stall transitions, want >= 2", transitions)
	}
	w := workerSummary(t, res, app.workerTID)
	if w.StallEvents < 2 {
		t.Fatalf("stall events = %d, want >= 2", w.StallEvents)
	}
	if w.StallEvents != transitions {
		t.Fatalf("snapshot counted %d episodes, stream saw %d", w.StallEvents, transitions)
	}
}

// TestStallScenarioStalledThreadExits: a worker that dies while flagged
// stalled must ship one final Stalled=false sample — without it, gauges
// keyed by TID downstream (aggd's zerosum_lwp_stalled) would pin the dead
// thread as stalled for the rest of the job — and leave the live stalled
// count at zero.
func TestStallScenarioStalledThreadExits(t *testing.T) {
	app := &stallApp{
		mainUntil: 4 * sim.Second,
		worker: func(*stallApp) sched.BehaviorFunc {
			slept := false
			return func(t *sched.Task, now sim.Time) sched.Action {
				if now < sim.Second {
					return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
				}
				if !slept {
					slept = true
					return sched.Sleep{D: 1500 * sim.Millisecond}
				}
				return nil // exit immediately on waking, still flagged stalled
			}
		},
	}
	res, samples := runStallScenario(t, app, 5)

	sawStalled := false
	for _, s := range samples {
		if s.Stalled {
			sawStalled = true
			break
		}
	}
	if !sawStalled {
		t.Fatal("worker never flagged during its 1.5 s stall")
	}
	if len(samples) == 0 {
		t.Fatal("no worker samples streamed")
	}
	if last := samples[len(samples)-1]; last.Stalled {
		t.Fatalf("dead worker's final streamed sample still stalled (t=%.2f); downstream gauges would leak", last.TimeSec)
	}
	w := workerSummary(t, res, app.workerTID)
	if w.Stalled {
		t.Fatal("dead worker still stalled in the final snapshot")
	}
	if w.StallEvents != 1 {
		t.Fatalf("stall events = %d, want 1", w.StallEvents)
	}
	if res.Ranks[0].Snapshot.StalledLWPs != 0 {
		t.Fatalf("StalledLWPs = %d, want 0 after the stalled thread exited", res.Ranks[0].Snapshot.StalledLWPs)
	}
}

// TestMonitorSelfOverheadWithinBudget is the §4.1 acceptance check: at the
// paper's 1 Hz sampling rate the monitor's own measured cost stays under
// the 0.5 % budget and the watchdog never fires.
func TestMonitorSelfOverheadWithinBudget(t *testing.T) {
	rec := obs.NewRecorder(0)
	app := &stallApp{
		mainUntil: 30 * sim.Second,
		worker:    func(*stallApp) sched.BehaviorFunc { return computeUntil(30 * sim.Second) },
	}
	res, err := Run(Config{
		Machine: topology.Laptop4Core,
		App:     app,
		Srun:    slurm.Options{NTasks: 1, CoresPerTask: 4},
		Monitor: MonitorConfig{
			Enabled: true, Period: sim.Second, CPU: -1,
			Budget: obs.Budget{Enabled: true},
			Obs:    rec,
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := res.Ranks[0].Monitor
	self := mon.SelfStats()
	if self.Samples < 20 {
		t.Fatalf("samples = %d, want ~30 at 1 Hz over 30 s", self.Samples)
	}
	if self.OverheadPct >= 0.5 {
		t.Fatalf("overhead = %.3f%%, want < 0.5%%", self.OverheadPct)
	}
	if self.Degradations != 0 || mon.CurrentPeriod() != sim.Second.Duration() {
		t.Fatalf("watchdog fired under budget: %d degradations, period %v",
			self.Degradations, mon.CurrentPeriod())
	}
	if self.BudgetPct != obs.DefaultBudgetPct {
		t.Fatalf("budget = %v, want default %v", self.BudgetPct, obs.DefaultBudgetPct)
	}
	// Internal tracing saw every tick and its phases.
	if got := rec.Count(obs.StageTick); got != uint64(self.Samples) {
		t.Fatalf("tick spans = %d, samples = %d", got, self.Samples)
	}
	if rec.Count(obs.StageScan) == 0 || rec.Count(obs.StageSample) == 0 {
		t.Fatal("phase spans missing")
	}
	// The snapshot carries the same self accounting for the report.
	if snap := res.Ranks[0].Snapshot; snap.Self.Samples != self.Samples {
		t.Fatalf("snapshot self samples = %d, want %d", snap.Self.Samples, self.Samples)
	}
}

// TestWatchdogDegradesSampling lowers the budget far below the monitor's
// simulated cost: the watchdog must halve the sampling rate (double the
// period), count each firing, and stop at MaxDegrade.
func TestWatchdogDegradesSampling(t *testing.T) {
	var hb strings.Builder
	app := &stallApp{
		mainUntil: 10 * sim.Second,
		worker:    func(*stallApp) sched.BehaviorFunc { return computeUntil(10 * sim.Second) },
	}
	base := 50 * sim.Millisecond
	res, err := Run(Config{
		Machine: topology.Laptop4Core,
		App:     app,
		Srun:    slurm.Options{NTasks: 1, CoresPerTask: 4},
		Monitor: MonitorConfig{
			Enabled: true, Period: base, CPU: -1,
			Heartbeat: &hb,
			Budget:    obs.Budget{Enabled: true, MaxPct: 0.05, MinSamples: 3},
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := res.Ranks[0].Monitor
	if mon.Degradations() < 1 {
		t.Fatalf("watchdog never fired (overhead %.3f%%)", mon.SelfStats().OverheadPct)
	}
	if mon.Degradations() > obs.DefaultMaxDegrade {
		t.Fatalf("degradations = %d, want <= %d", mon.Degradations(), obs.DefaultMaxDegrade)
	}
	want := base.Duration() << mon.Degradations()
	if mon.CurrentPeriod() != want {
		t.Fatalf("period = %v after %d degradations, want %v",
			mon.CurrentPeriod(), mon.Degradations(), want)
	}
	if !strings.Contains(hb.String(), "sampling period degraded") {
		t.Fatalf("degradation not logged:\n%s", hb.String())
	}
	// The monitor thread actually slowed down: far fewer samples than the
	// base rate would have taken over 10 s.
	if s := mon.SelfStats(); s.Samples >= 200 {
		t.Fatalf("samples = %d, want well under 10s/50ms after degradation", s.Samples)
	}
}
