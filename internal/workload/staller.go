package workload

import (
	"zerosum/internal/sched"
	"zerosum/internal/sim"
)

// Staller is the §3.3 stall profile packaged as a launchable proxy app
// (the test-only scenarios in stall_test.go hand-build behaviors; scenario
// mixes need a reusable App): Threads workers compute in WorkSlice bursts
// until Until; starting at StallAt one designated worker goes silent for
// StallFor — no user-time progress, no voluntary yield pattern change the
// monitor would excuse — then resumes. With StallTicks enabled the monitor
// flags exactly that window.
type Staller struct {
	// Threads is the worker count; 0 uses the runtime default (one per
	// cpuset PU).
	Threads int
	// Until is each thread's total wall horizon.
	Until sim.Time
	// WorkSlice is the compute burst length between scheduler visits.
	WorkSlice sim.Time
	// SysFrac is the syscall share of compute time.
	SysFrac float64
	// StallAt / StallFor bound the designated worker's dead window.
	StallAt, StallFor sim.Time
}

// DefaultStaller stalls one of two workers for a third of a 3 s run.
func DefaultStaller() *Staller {
	return &Staller{
		Threads:   2,
		Until:     3 * sim.Second,
		WorkSlice: 5 * sim.Millisecond,
		SysFrac:   0.05,
		StallAt:   sim.Second,
		StallFor:  sim.Second,
	}
}

// Name labels the simulated process.
func (s *Staller) Name() string { return "staller" }

// Build implements App.
func (s *Staller) Build(rc *RankCtx) error {
	n := s.Threads
	if n <= 0 {
		n = rc.OMP.TeamSize(rc.Proc.Affinity)
	}
	slice := s.WorkSlice
	if slice <= 0 {
		slice = 5 * sim.Millisecond
	}
	until := s.Until
	if until <= 0 {
		until = 3 * sim.Second
	}
	mkWorker := func(threadNum int) sched.Behavior {
		stalled := false
		return sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
			if now >= until {
				return nil
			}
			// The last worker carries the stall so thread 0 (the "main"
			// thread in single-thread runs) keeps making progress.
			if threadNum == n-1 && s.StallFor > 0 && !stalled && now >= s.StallAt {
				stalled = true
				return sched.Sleep{D: s.StallFor}
			}
			return sched.Compute{Work: slice, SysFrac: s.SysFrac}
		})
	}
	master := rc.K.NewTask(rc.Proc, s.Name(), mkWorker(0))
	rc.OMP.Launch(rc.Proc, master, n, mkWorker)
	return nil
}
