// Package zerosum is a Go reproduction of "ZeroSum: User Space Monitoring
// of Resource Utilization and Contention on Heterogeneous HPC Systems"
// (Huck & Malony, HUST-23 / SC'23 workshops).
//
// The package has two faces:
//
//   - A user-space monitor (the paper's tool): attach a Monitor to a
//     process via a /proc view (the live Linux /proc through NewRealProcFS,
//     or a simulated kernel), sample threads / hardware threads / memory /
//     GPUs once per period, and produce utilization reports, contention
//     reports, heartbeats and CSV exports.
//
//   - A simulated heterogeneous HPC testbed (the substrate the paper's
//     Frontier evaluation is reproduced on): node topologies (Frontier,
//     Summit, Perlmutter, Aurora presets), a discrete-event kernel
//     scheduler with affinity, preemption, migration, memory-bandwidth and
//     SMT contention, simulated MPI/OpenMP/Slurm/GPU layers, and the
//     miniQMC / PIC proxy applications.
//
// See RunJob for launching simulated experiments and MonitorSelf for
// observing the calling process on a real Linux host.
package zerosum

import (
	"io"
	"time"

	"zerosum/internal/advisor"
	"zerosum/internal/analysis"
	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/fsio"
	"zerosum/internal/gpu"
	"zerosum/internal/mpi"
	"zerosum/internal/obs"
	"zerosum/internal/openmp"
	"zerosum/internal/perfstub"
	"zerosum/internal/proc"
	"zerosum/internal/report"
	"zerosum/internal/sched"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

// Monitoring API (the paper's tool).
type (
	// Monitor is the ZeroSum monitor attached to one process.
	Monitor = core.Monitor
	// MonitorConfig tunes sampling.
	MonitorConfig = core.Config
	// MonitorDeps are the monitor's data sources.
	MonitorDeps = core.Deps
	// AdaptiveConfig tunes per-LWP adaptive sampling.
	AdaptiveConfig = core.AdaptiveConfig
	// Snapshot is the assembled end-of-run report data.
	Snapshot = core.Snapshot
	// Warning is one configuration-evaluation finding.
	Warning = core.Warning
	// EvalThresholds tunes configuration evaluation.
	EvalThresholds = core.EvalThresholds
	// ReportOptions controls optional report sections.
	ReportOptions = report.Options
	// ProcFS is the /proc interface monitors read through.
	ProcFS = proc.FS
	// Stream is the in-process sample pub/sub hook.
	Stream = export.Stream
	// ObsRecorder is the monitor's internal span ring (self-observability).
	ObsRecorder = obs.Recorder
	// ObsBudget configures the self-overhead watchdog (§4.1).
	ObsBudget = obs.Budget
	// SelfStats is the monitor's own cost accounting.
	SelfStats = obs.SelfStats
)

// NewObsRecorder creates an internal-tracing span recorder to pass in
// MonitorConfig.Obs (capacity 0 = default ring size).
func NewObsRecorder(capacity int) *ObsRecorder { return obs.NewRecorder(capacity) }

// Simulation and experiment API (the substrate).
type (
	// Machine is a hardware topology.
	Machine = topology.Machine
	// CPUSet is an affinity mask.
	CPUSet = topology.CPUSet
	// JobConfig describes a simulated job.
	JobConfig = workload.Config
	// JobMonitor configures the injected ZeroSum thread in simulated jobs.
	JobMonitor = workload.MonitorConfig
	// JobResult is a simulated job's outcome.
	JobResult = workload.Result
	// SrunOptions mirrors the launcher flags.
	SrunOptions = slurm.Options
	// OMPEnv is the OpenMP environment.
	OMPEnv = openmp.Env
	// MiniQMC is the paper's proxy application.
	MiniQMC = workload.MiniQMC
	// PICHalo is the Figure 5 communication workload.
	PICHalo = workload.PICHalo
	// SchedParams tunes the simulated kernel scheduler.
	SchedParams = sched.Params
	// NetParams tunes the simulated interconnect.
	NetParams = mpi.NetParams
	// Heatmap is the communication matrix.
	Heatmap = analysis.Heatmap
	// SMI is the GPU management interface.
	SMI = gpu.SMI
	// Advice is one configuration recommendation.
	Advice = advisor.Advice
	// AdvisorInput bundles what the advisor reasons over.
	AdvisorInput = advisor.Input
	// FSParams describes the simulated shared filesystem.
	FSParams = fsio.Params
	// Stubs is the PerfStubs-style instrumentation registry.
	Stubs = perfstub.Registry
	// JobSummary is the allocation-wide aggregated view.
	JobSummary = report.JobSummary
)

// NewMonitor creates a monitor over arbitrary dependencies.
func NewMonitor(cfg MonitorConfig, deps MonitorDeps) (*Monitor, error) {
	return core.New(cfg, deps)
}

// NewRealProcFS returns the live Linux /proc view of this host.
func NewRealProcFS() ProcFS { return proc.NewRealFS() }

// MonitorSelf creates a monitor observing the calling process through the
// live /proc, with a wall clock — the paper's always-on library mode.
func MonitorSelf(cfg MonitorConfig) (*Monitor, error) {
	return core.New(cfg, core.Deps{FS: proc.NewRealFS(), Clock: realClock()})
}

// RunJob executes a simulated job (launch, apps, optional monitoring) and
// returns per-rank results.
func RunJob(cfg JobConfig) (*JobResult, error) { return workload.Run(cfg) }

// WriteReport renders the Listing-2 style utilization report.
func WriteReport(w io.Writer, snap Snapshot, opts ReportOptions) error {
	return report.Write(w, snap, opts)
}

// Evaluate runs configuration evaluation on a snapshot.
func Evaluate(snap Snapshot, th EvalThresholds) []Warning {
	return core.Evaluate(snap, th)
}

// MachineByName returns a topology preset: "frontier", "summit",
// "perlmutter", "aurora" or "laptop".
func MachineByName(name string) (*Machine, error) { return topology.ByName(name) }

// Lstopo renders a machine as an hwloc lstopo-style text tree (Listing 1).
func Lstopo(m *Machine) string { return topology.Lstopo(m) }

// DefaultMiniQMC returns the miniQMC configuration calibrated against the
// paper's Frontier runs.
func DefaultMiniQMC() *MiniQMC { return workload.DefaultMiniQMC() }

// DefaultPICHalo returns the Figure 5 workload configuration.
func DefaultPICHalo() *PICHalo { return workload.DefaultPICHalo() }

// HeatmapFromJob builds the Figure 5 communication heatmap from a job.
func HeatmapFromJob(res *JobResult) *Heatmap {
	return analysis.FromMatrix(res.World.RecvMatrix())
}

// Advise turns a snapshot plus launch settings into configuration fixes.
func Advise(in AdvisorInput) []Advice { return advisor.Advise(in) }

// AggregateJob builds the allocation-wide summary from per-rank snapshots.
func AggregateJob(snaps []Snapshot, th EvalThresholds) (*JobSummary, error) {
	return report.Aggregate(snaps, th)
}

// WriteJobSummary renders the aggregated job view.
func WriteJobSummary(w io.Writer, js *JobSummary) error {
	return report.WriteJobSummary(w, js)
}

// WelchTTest compares two runtime distributions (the Figure 8 statistic).
func WelchTTest(a, b []float64) (analysis.TTestResult, error) {
	return analysis.WelchTTest(a, b)
}

func realClock() func() time.Time { return time.Now }
