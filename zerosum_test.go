package zerosum

import (
	"context"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"zerosum/internal/openmp"
	"zerosum/internal/topology"
)

func TestFacadeSimulatedJob(t *testing.T) {
	mq := DefaultMiniQMC()
	mq.Steps = 6
	res, err := RunJob(JobConfig{
		Machine: topology.Frontier,
		App:     mq,
		Srun:    SrunOptions{NTasks: 8, CoresPerTask: 7},
		OMP:     OMPEnv{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores},
		Monitor: JobMonitor{Enabled: true},
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallSeconds <= 0 {
		t.Fatal("no runtime")
	}
	var sb strings.Builder
	if err := WriteReport(&sb, res.Ranks[0].Snapshot, ReportOptions{Contention: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "LWP (thread) Summary:") {
		t.Fatalf("report: %s", sb.String())
	}
	if ws := Evaluate(res.Ranks[0].Snapshot, EvalThresholds{}); ws == nil {
		_ = ws // a clean run may produce no warnings; just exercise the path
	}
}

func TestFacadeMachineAndLstopo(t *testing.T) {
	m, err := MachineByName("laptop")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Lstopo(m), "PU L#1 P#4") {
		t.Fatal("lstopo output wrong")
	}
	if _, err := MachineByName("bogus"); err == nil {
		t.Fatal("unknown machine should error")
	}
}

func TestFacadeHeatmap(t *testing.T) {
	pic := DefaultPICHalo()
	pic.Steps = 3
	res, err := RunJob(JobConfig{
		Machine: topology.Frontier,
		Nodes:   2,
		App:     pic,
		Srun:    SrunOptions{NTasks: 16, CoresPerTask: 7},
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hm := HeatmapFromJob(res)
	if hm.BandFraction(1) < 0.5 {
		t.Fatalf("band fraction = %v", hm.BandFraction(1))
	}
}

func TestFacadeWelchTTest(t *testing.T) {
	r, err := WelchTTest([]float64{1, 2, 3, 4, 5}, []float64{2, 3, 4, 5, 6})
	if err != nil || r.P <= 0 || r.P >= 1 {
		t.Fatalf("t-test: %+v, %v", r, err)
	}
}

// TestMonitorSelfLiveHost runs the paper's always-on library mode against
// this process on the real Linux /proc for a few fast ticks.
func TestMonitorSelfLiveHost(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("needs Linux")
	}
	if _, err := os.Stat("/proc/self/stat"); err != nil {
		t.Skip("no /proc")
	}
	mon, err := MonitorSelf(MonitorConfig{Period: 20 * time.Millisecond, KeepSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := mon.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if mon.Samples() < 2 {
		t.Fatalf("samples = %d, want >= 2", mon.Samples())
	}
	snap := mon.Snapshot()
	if len(snap.LWPs) == 0 {
		t.Fatal("no threads observed on live host")
	}
	if snap.PID != os.Getpid() {
		t.Fatalf("pid = %d", snap.PID)
	}
	var sb strings.Builder
	if err := WriteReport(&sb, snap, ReportOptions{Memory: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Hardware Summary:") {
		t.Fatal("live report incomplete")
	}
}

func TestNewMonitorWithRealFS(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("needs Linux")
	}
	mon, err := NewMonitor(MonitorConfig{}, MonitorDeps{FS: NewRealProcFS(), Clock: time.Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Tick(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAggregateJob(t *testing.T) {
	mq := DefaultMiniQMC()
	mq.Steps = 5
	res, err := RunJob(JobConfig{
		Machine: topology.Frontier,
		App:     mq,
		Srun:    SrunOptions{NTasks: 4, CoresPerTask: 7},
		OMP:     OMPEnv{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores},
		Monitor: JobMonitor{Enabled: true},
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	for _, rr := range res.Ranks {
		snaps = append(snaps, rr.Snapshot)
	}
	js, err := AggregateJob(snaps, EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if js.Ranks != 4 {
		t.Fatalf("ranks = %d", js.Ranks)
	}
	var sb strings.Builder
	if err := WriteJobSummary(&sb, js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Job Summary: 4 ranks") {
		t.Fatalf("summary: %s", sb.String())
	}
}

func TestFacadeAdviseOnCleanRun(t *testing.T) {
	mq := DefaultMiniQMC()
	mq.Steps = 5
	srun := SrunOptions{NTasks: 4, CoresPerTask: 7}
	env := OMPEnv{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores}
	res, err := RunJob(JobConfig{
		Machine: topology.Frontier, App: mq, Srun: srun, OMP: env,
		Monitor: JobMonitor{Enabled: true}, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Advise(AdvisorInput{
		Snapshot: res.Ranks[0].Snapshot, Machine: topology.Frontier(),
		Srun: srun, OMP: env,
	}) {
		if a.Srun != nil {
			t.Fatalf("clean run should not get launch advice: %v", a)
		}
	}
}
